package corr

import (
	"math"
)

// MaronnaConfig tunes the bivariate Maronna M-estimator iteration.
type MaronnaConfig struct {
	// K is the Huber tuning constant on the Mahalanobis distance d.
	// Observations with d ≤ K get full weight; beyond K the weight
	// decays as K/d (location) and K²/d² (scatter), giving the smooth
	// down-weighting of outliers the paper relies on.
	K float64
	// MaxIter bounds the fixed-point iteration.
	MaxIter int
	// Tol is the convergence threshold on the relative change of the
	// scatter matrix between iterations.
	Tol float64
}

// DefaultMaronnaConfig uses K = 2.0 (≈ 95th percentile of a bivariate
// normal's Mahalanobis distance is 2.45; 2.0 trims a bit harder, which
// suits contaminated tick data), 50 iterations and 1e-8 tolerance.
func DefaultMaronnaConfig() MaronnaConfig {
	return MaronnaConfig{K: 2.0, MaxIter: 50, Tol: 1e-8}
}

// MaronnaEstimator computes the robust correlation coefficient via
// Maronna's M-estimator of bivariate location and scatter. The
// estimator iterates
//
//	t   = Σ w1(dᵢ)·xᵢ / Σ w1(dᵢ)
//	V   = (1/n) Σ w2(dᵢ²)·(xᵢ−t)(xᵢ−t)ᵀ
//	dᵢ² = (xᵢ−t)ᵀ V⁻¹ (xᵢ−t)
//
// with Huber weights w1(d) = min(1, K/d), w2(d²) = min(1, K²/d²), then
// reads the correlation off the scatter matrix, ρ = V₁₂/√(V₁₁V₂₂).
// Because correlation is scale-free, the usual consistency constant on
// V cancels and is omitted.
//
// The zero value is not usable; construct with NewMaronnaEstimator.
// The estimator itself is stateless between calls and safe for
// concurrent use; scratch space is allocated per call (the engine
// amortises this with per-worker scratch buffers via CorrScratch).
type MaronnaEstimator struct {
	cfg MaronnaConfig
}

// NewMaronnaEstimator validates and captures cfg.
func NewMaronnaEstimator(cfg MaronnaConfig) *MaronnaEstimator {
	if cfg.K <= 0 {
		cfg.K = 2.0
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	return &MaronnaEstimator{cfg: cfg}
}

// Config returns the estimator's (validated) configuration.
func (e *MaronnaEstimator) Config() MaronnaConfig { return e.cfg }

// Type implements Estimator.
func (e *MaronnaEstimator) Type() Type { return Maronna }

// Corr implements Estimator.
func (e *MaronnaEstimator) Corr(x, y []float64) float64 {
	c, _ := e.CorrScratch(x, y, nil)
	return c
}

// Scratch holds reusable per-worker buffers for the iteration.
type Scratch struct {
	w    []float64 // final per-observation scatter weights
	sbuf []float64 // selection buffer for medians
}

// Weights returns the per-observation weights of the last fit (valid
// until the next call). The Combined estimator feeds them into a
// weighted Pearson computation.
func (s *Scratch) Weights() []float64 { return s.w }

// Fit is the result of one Maronna estimation: the location/scatter
// state the iteration converged to, the correlation read off it, and
// bookkeeping about how the fit was obtained. A converged Fit is
// reusable as the warm seed for the next overlapping window of the
// same pair (consecutive sliding windows share m−1 of m points, so the
// previous fixed point is an excellent initial iterate).
type Fit struct {
	T1, T2        float64 // robust location
	V11, V22, V12 float64 // robust scatter
	Rho           float64 // correlation coefficient in [-1, 1]
	Iters         int     // fixed-point iterations executed
	Converged     bool    // tolerance reached within MaxIter
	Seeded        bool    // produced by a warm-started run
	Valid         bool    // T/V usable as a warm seed for the next window
}

// CorrScratch computes the Maronna correlation using (and growing) the
// provided scratch buffers; pass nil to allocate fresh ones. It returns
// the coefficient and the scratch for reuse. Always a cold start; the
// sliding-window engines use FitScratch to chain warm starts.
func (e *MaronnaEstimator) CorrScratch(x, y []float64, sc *Scratch) (float64, *Scratch) {
	f, sc := e.FitScratch(x, y, sc, nil)
	return f.Rho, sc
}

// ColdInit is the univariate robust initialiser of one series: median
// location and MAD scale (with the standard-deviation fallback for
// samples that are more than half ties). It is a pure function of the
// series, so the matrix engine computes it once per stock per window
// and shares it across every pair containing that stock instead of
// re-deriving it inside each pair's cold start. Scale == 0 marks a
// genuinely constant series, for which no correlation is defined.
type ColdInit struct {
	Med   float64
	Scale float64
}

// ColdInitOf computes the cold-start initialiser of x using buf (len ≥
// len(x)) as selection scratch. The values are bit-identical to the
// ones FitScratch derives internally.
func ColdInitOf(buf, x []float64) ColdInit {
	t := medianInto(buf, x)
	s := madInto(buf, x, t)
	if s == 0 {
		s = tinyScale(x, t)
	}
	return ColdInit{Med: t, Scale: s}
}

// FitScratch computes the Maronna fit of (x, y). When warm points to a
// Valid previous fit (typically the converged fit of the overlapping
// previous window), the iteration starts from that location/scatter
// instead of the O(m) median/MAD initialisation, which both skips the
// selection work and cuts the iteration count to the few steps needed
// to absorb the one-point window change. A warm run that fails to
// converge cleanly (scatter collapse or iteration budget exhausted)
// falls back to the classic cold start, so warm starting never changes
// which fixed point is reported — only how fast it is reached.
func (e *MaronnaEstimator) FitScratch(x, y []float64, sc *Scratch, warm *Fit) (Fit, *Scratch) {
	return e.FitScratchShared(x, y, sc, warm, nil, nil)
}

// FitScratchShared is FitScratch with the cold-start initialisers
// precomputed: ix and iy, when non-nil, must be ColdInitOf(·, x) and
// ColdInitOf(·, y) for exactly these windows. The matrix engine hoists
// them out of the per-pair loop (one per stock per window instead of
// one per pair per window); passing nil recovers the classic inline
// computation, which produces bit-identical values.
func (e *MaronnaEstimator) FitScratchShared(x, y []float64, sc *Scratch, warm *Fit, ix, iy *ColdInit) (Fit, *Scratch) {
	n := len(x)
	if sc == nil {
		sc = &Scratch{}
	}
	if n == 0 || n != len(y) {
		sc.w = sc.w[:0]
		return Fit{}, sc
	}
	if cap(sc.w) < n {
		sc.w = make([]float64, n)
		sc.sbuf = make([]float64, n)
	}
	sc.w = sc.w[:n]
	sc.sbuf = sc.sbuf[:n]
	for i := range sc.w {
		sc.w[i] = 1
	}

	if warm != nil && warm.Valid {
		if f, ok := e.iterate(x, y, sc, warm.T1, warm.T2, warm.V11, warm.V22, warm.V12, true); ok {
			f.Seeded = true
			return f, sc
		}
		// The strict run may have left partial weights behind; restore
		// the all-ones state the cold path starts from so degenerate
		// cold exits keep their classic Combined semantics.
		for i := range sc.w {
			sc.w[i] = 1
		}
	}

	// Robust initialisation: coordinate-wise median location and
	// MAD-based diagonal scatter with zero cross-scatter, shared across
	// pairs when the caller precomputed it.
	var i1, i2 ColdInit
	if ix != nil {
		i1 = *ix
	} else {
		i1 = ColdInitOf(sc.sbuf, x)
	}
	if iy != nil {
		i2 = *iy
	} else {
		i2 = ColdInitOf(sc.sbuf, y)
	}
	if i1.Scale == 0 || i2.Scale == 0 {
		// A genuinely constant series has no defined correlation.
		return Fit{}, sc
	}
	f, _ := e.iterate(x, y, sc, i1.Med, i2.Med, i1.Scale*i1.Scale, i2.Scale*i2.Scale, 0, false)
	return f, sc
}

// iterate runs the Maronna fixed-point loop from the given initial
// location/scatter. In strict mode (warm starts) any scatter collapse
// or exhaustion of the iteration budget returns ok = false so the
// caller can rerun cold; in non-strict mode (cold starts) it
// reproduces the classic behaviour — break on collapse and accept the
// final state.
//
// The plain fixed-point map contracts only linearly (rate ≈ 0.4 on
// typical return windows, so ~20 steps to Tol = 1e-8), which makes the
// iteration count — not the per-step O(m) passes — the dominant cost.
// iterate therefore applies safeguarded Anderson(1)/Aitken
// extrapolation across consecutive steps: the mixing parameter is the
// least-squares fit of the last two residuals, and an extrapolated
// state is used only when it keeps the scatter positive definite
// (otherwise the plain update proceeds unchanged). Convergence is
// still declared on the residual of the plain map, so the accepted
// fixed point satisfies the same tolerance as the unaccelerated loop.
func (e *MaronnaEstimator) iterate(x, y []float64, sc *Scratch, t1, t2, v11, v22, v12 float64, strict bool) (Fit, bool) {
	n := len(x)
	k := e.cfg.K
	k2 := k * k
	converged := false
	iters := 0
	// Previous step's map output and residual for the extrapolation.
	var pg, pf [5]float64
	havePrev := false
	for iter := 0; iter < e.cfg.MaxIter; iter++ {
		det := v11*v22 - v12*v12
		if det <= 0 || v11 <= 0 || v22 <= 0 {
			// Scatter collapsed (perfectly dependent or degenerate
			// sample): read the correlation off the current V.
			if strict {
				return Fit{}, false
			}
			break
		}
		iters = iter + 1
		// Inverse of the 2x2 scatter.
		i11 := v22 / det
		i22 := v11 / det
		i12 := -v12 / det

		// Location step with Huber w1.
		var sw, sx, sy float64
		for i := 0; i < n; i++ {
			dx, dy := x[i]-t1, y[i]-t2
			d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
			w := 1.0
			if d2 > k2 {
				w = k / math.Sqrt(d2)
			}
			sw += w
			sx += w * x[i]
			sy += w * y[i]
		}
		if sw == 0 {
			if strict {
				return Fit{}, false
			}
			break
		}
		t1n, t2n := sx/sw, sy/sw

		// Scatter step with Huber w2.
		var n11, n22, n12 float64
		for i := 0; i < n; i++ {
			dx, dy := x[i]-t1n, y[i]-t2n
			d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
			w := 1.0
			if d2 > k2 {
				w = k2 / d2
			}
			sc.w[i] = w
			n11 += w * dx * dx
			n22 += w * dy * dy
			n12 += w * dx * dy
		}
		fn := float64(n)
		n11 /= fn
		n22 /= fn
		n12 /= fn

		// Relative change of the scatter for the stopping rule.
		den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
		num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
		g := [5]float64{t1n, t2n, n11, n22, n12}
		f := [5]float64{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
		t1, t2 = t1n, t2n
		v11, v22, v12 = n11, n22, n12
		if den > 0 && num/den < e.cfg.Tol {
			converged = true
			break
		}

		// Anderson(1) extrapolation from the last two plain steps.
		if havePrev {
			var fd, dd float64
			for c := 0; c < 5; c++ {
				d := f[c] - pf[c]
				fd += f[c] * d
				dd += d * d
			}
			if dd > 0 {
				if theta := fd / dd; math.Abs(theta) < 16 {
					a1 := t1n - theta*(t1n-pg[0])
					a2 := t2n - theta*(t2n-pg[1])
					a11 := n11 - theta*(n11-pg[2])
					a22 := n22 - theta*(n22-pg[3])
					a12 := n12 - theta*(n12-pg[4])
					// Safeguard: extrapolate only onto a usable scatter.
					if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
						t1, t2 = a1, a2
						v11, v22, v12 = a11, a22, a12
					}
				}
			}
		}
		pg, pf = g, f
		havePrev = true
	}
	if strict && !converged {
		return Fit{}, false
	}
	f := Fit{T1: t1, T2: t2, V11: v11, V22: v22, V12: v12, Iters: iters, Converged: converged}
	if v11 <= 0 || v22 <= 0 {
		return f, false
	}
	f.Rho = clampCorr(v12 / math.Sqrt(v11*v22))
	// Only cleanly converged scatters seed the next window: a collapsed
	// or budget-exhausted state would poison the warm chain.
	f.Valid = converged && v11*v22-v12*v12 > 0
	return f, true
}

// medianInto computes the median of xs using buf as selection space.
func medianInto(buf, xs []float64) float64 {
	buf = buf[:len(xs)]
	copy(buf, xs)
	return medianSelect(buf)
}

// madInto computes the median absolute deviation about center, scaled
// by 1.4826 for consistency at the normal.
func madInto(buf, xs []float64, center float64) float64 {
	buf = buf[:len(xs)]
	for i, x := range xs {
		buf[i] = math.Abs(x - center)
	}
	return 1.4826 * medianSelect(buf)
}

// tinyScale falls back to the standard deviation when the MAD is zero
// (more than half the sample identical — common for illiquid stocks
// whose BAM does not move every interval).
func tinyScale(xs []float64, center float64) float64 {
	var ss float64
	for _, x := range xs {
		d := x - center
		ss += d * d
	}
	if len(xs) == 0 {
		return 0
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CombinedEstimator implements the paper's third treatment. The paper
// never defines "Combined" formally; our interpretation (documented in
// DESIGN.md) is the average of the Maronna coefficient and a Pearson
// coefficient computed under Maronna's final robustness weights. Both
// halves are outlier-resistant, so the measure is more conservative
// (lower dispersion) than raw Pearson — matching the qualitative role
// Combined plays in the paper's results.
type CombinedEstimator struct {
	m *MaronnaEstimator
}

// NewCombinedEstimator builds a Combined estimator over the given
// Maronna configuration.
func NewCombinedEstimator(cfg MaronnaConfig) *CombinedEstimator {
	return &CombinedEstimator{m: NewMaronnaEstimator(cfg)}
}

// Type implements Estimator.
func (e *CombinedEstimator) Type() Type { return Combined }

// Corr implements Estimator.
func (e *CombinedEstimator) Corr(x, y []float64) float64 {
	c, _ := e.CorrScratch(x, y, nil)
	return c
}

// CorrScratch computes the Combined coefficient with reusable scratch.
func (e *CombinedEstimator) CorrScratch(x, y []float64, sc *Scratch) (float64, *Scratch) {
	f, sc := e.m.FitScratch(x, y, sc, nil)
	return CombinedFromFit(x, y, f.Rho, sc.w), sc
}

// CombinedFromFit derives the Combined coefficient from an
// already-computed Maronna fit: the 50/50 blend of the robust
// coefficient and the Pearson coefficient under the fit's robustness
// weights. The sliding-window engines use it to serve the Combined
// treatment from the Maronna treatment's fit instead of re-running the
// full M-estimation — the fits for the identical (pair, M, window) are
// the same, so robust work is done once per window, not twice.
func CombinedFromFit(x, y []float64, maronnaRho float64, w []float64) float64 {
	if len(w) != len(x) {
		return maronnaRho
	}
	wp := WeightedPearson(x, y, w)
	return clampCorr((maronnaRho + wp) / 2)
}
