package corr

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// snapReturns builds a deterministic T×n return stream with occasional
// outliers so the robust warm-fit chain exercises both warm and cold
// paths.
func snapReturns(t, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, t)
	common := 0.0
	for s := range out {
		common = 0.6*common + 0.01*rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = common + 0.02*rng.NormFloat64()
			if rng.Float64() < 0.02 {
				v[i] += 0.5 // outlier burst
			}
		}
		out[s] = v
	}
	return out
}

func pushAll(t *testing.T, e *OnlineEngine, rets [][]float64) []*Matrix {
	t.Helper()
	var out []*Matrix
	for _, v := range rets {
		m, err := e.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func sameMatrixBits(a, b *Matrix) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

// TestEngineSnapshotResumeBitIdentical is the crash-safety core claim:
// an engine restored from a mid-day snapshot (round-tripped through
// JSON, as the supervise store would persist it) produces bit-identical
// matrices for the rest of the day.
func TestEngineSnapshotResumeBitIdentical(t *testing.T) {
	const n, m, total = 6, 16, 48
	rets := snapReturns(total, n, 41)
	for _, typ := range Types() {
		t.Run(typ.String(), func(t *testing.T) {
			cfg := EngineConfig{Type: typ, M: m, Workers: 3}
			ref, err := NewOnlineEngine(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			refMats := pushAll(t, ref, rets)

			// Crash at several cut points, including mid-warmup.
			for _, cut := range []int{5, m, m + 7, total - 3} {
				crashed, err := NewOnlineEngine(cfg, n)
				if err != nil {
					t.Fatal(err)
				}
				pushAll(t, crashed, rets[:cut])
				raw, err := json.Marshal(crashed.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				var snap EngineSnapshot
				if err := json.Unmarshal(raw, &snap); err != nil {
					t.Fatal(err)
				}
				resumed, err := NewOnlineEngine(cfg, n)
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.Restore(&snap); err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				for s := cut; s < total; s++ {
					got, err := resumed.Push(rets[s])
					if err != nil {
						t.Fatal(err)
					}
					if !sameMatrixBits(got, refMats[s]) {
						t.Fatalf("cut %d: matrix at interval %d differs from uninterrupted run", cut, s)
					}
				}
			}
		})
	}
}

func TestEngineSnapshotFingerprintEncodesConfig(t *testing.T) {
	mk := func(cfg EngineConfig, n int) string {
		e, err := NewOnlineEngine(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		return e.Fingerprint()
	}
	base := mk(EngineConfig{Type: Maronna, M: 16}, 6)
	for name, other := range map[string]string{
		"type": mk(EngineConfig{Type: Pearson, M: 16}, 6),
		"m":    mk(EngineConfig{Type: Maronna, M: 32}, 6),
		"n":    mk(EngineConfig{Type: Maronna, M: 16}, 7),
		"psd":  mk(EngineConfig{Type: Maronna, M: 16, RepairPSD: true}, 6),
	} {
		if other == base {
			t.Errorf("fingerprint does not distinguish %s", name)
		}
	}
}

// TestEngineRestoreRejectsBadSnapshots is the satellite-6 table: every
// malformed, non-finite, or out-of-range field must be rejected, and a
// rejected restore must leave the engine untouched.
func TestEngineRestoreRejectsBadSnapshots(t *testing.T) {
	const n, m = 5, 8
	cfg := EngineConfig{Type: Maronna, M: m, Workers: 2}
	rets := snapReturns(m+4, n, 9)

	mkSnap := func() *EngineSnapshot {
		e, err := NewOnlineEngine(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		pushAll(t, e, rets)
		return e.Snapshot()
	}

	cases := []struct {
		name   string
		mutate func(s *EngineSnapshot)
		want   string
	}{
		{"wrong-schema", func(s *EngineSnapshot) { s.Schema = "marketminer/online-engine/v0" }, "schema"},
		{"wrong-type", func(s *EngineSnapshot) { s.Type = "Pearson" }, "estimator type"},
		{"wrong-n", func(s *EngineSnapshot) { s.N = n + 1 }, "shape"},
		{"wrong-m", func(s *EngineSnapshot) { s.M = m * 2 }, "shape"},
		{"head-negative", func(s *EngineSnapshot) { s.Head = -1 }, "head"},
		{"head-past-ring", func(s *EngineSnapshot) { s.Head = m }, "head"},
		{"count-negative", func(s *EngineSnapshot) { s.Count = -2 }, "count"},
		{"count-past-window", func(s *EngineSnapshot) { s.Count = m + 1 }, "count"},
		{"missing-window", func(s *EngineSnapshot) { s.Windows = s.Windows[:n-1] }, "windows"},
		{"short-window", func(s *EngineSnapshot) { s.Windows[2] = s.Windows[2][:m-1] }, "points"},
		{"nan-window", func(s *EngineSnapshot) { s.Windows[1][3] = math.NaN() }, "non-finite"},
		{"inf-window", func(s *EngineSnapshot) { s.Windows[4][0] = math.Inf(1) }, "non-finite"},
		{"missing-fits", func(s *EngineSnapshot) { s.Fits = s.Fits[:len(s.Fits)-1] }, "warm fits"},
		{"nan-fit-location", func(s *EngineSnapshot) { s.Fits[0].T1 = math.NaN() }, "non-finite"},
		{"inf-fit-scatter", func(s *EngineSnapshot) { s.Fits[1].V12 = math.Inf(-1) }, "non-finite"},
		{"nan-rho", func(s *EngineSnapshot) { s.Fits[2].Rho = math.NaN() }, "non-finite"},
		{"rho-out-of-range", func(s *EngineSnapshot) { s.Fits[3].Rho = 1.5 }, "outside [-1,1]"},
		{"negative-scatter", func(s *EngineSnapshot) { s.Fits[4].V11 = -0.25 }, "negative scatter"},
		{"negative-iters", func(s *EngineSnapshot) { s.Fits[0].Iters = -3 }, "iteration count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewOnlineEngine(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			warm := pushAll(t, e, rets)
			control, err := NewOnlineEngine(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			pushAll(t, control, rets)

			s := mkSnap()
			tc.mutate(s)
			err = e.Restore(s)
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			// The engine must be untouched: its next matrix matches a
			// control engine that never saw the failed restore.
			next := rets[len(rets)-1]
			got, err := e.Push(next)
			if err != nil {
				t.Fatal(err)
			}
			wantM, err := control.Push(next)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatrixBits(got, wantM) {
				t.Errorf("failed restore perturbed engine state (last warm matrix %v)", warm[len(warm)-1] != nil)
			}
		})
	}
}

func TestEngineRestoreRejectsFitsForPearson(t *testing.T) {
	const n, m = 4, 8
	e, err := NewOnlineEngine(EngineConfig{Type: Pearson, M: m}, n)
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, e, snapReturns(m, n, 13))
	s := e.Snapshot()
	if len(s.Fits) != 0 {
		t.Fatalf("Pearson snapshot carries %d fits", len(s.Fits))
	}
	s.Fits = []FitState{{Valid: true}}
	if err := e.Restore(s); err == nil || !strings.Contains(err.Error(), "warm fits") {
		t.Errorf("fits accepted into a Pearson engine: %v", err)
	}
}

func TestEngineSnapshotIsDeepCopy(t *testing.T) {
	const n, m = 4, 8
	cfg := EngineConfig{Type: Maronna, M: m}
	e, err := NewOnlineEngine(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	rets := snapReturns(m+2, n, 21)
	pushAll(t, e, rets[:m])
	s := e.Snapshot()
	// Mutating the snapshot must not reach into the live engine.
	s.Windows[0][0] = 1e9
	s.Fits[0].Rho = 0.123456

	e2, err := NewOnlineEngine(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, e2, rets[:m])
	a, err := e.Push(rets[m])
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Push(rets[m])
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatrixBits(a, b) {
		t.Error("snapshot shares memory with the engine")
	}
}
