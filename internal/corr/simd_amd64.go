//go:build amd64 && !noasm

package corr

// Arch-specific half of the SIMD dispatch: CPUID feature detection and
// the Go declarations of the hand-written AVX2 kernels in
// maronna_amd64.s. The build tag pair (`amd64 && !noasm` here,
// `!amd64 || noasm` in simd_fallback.go) guarantees exactly one
// definition of each symbol in every build configuration.

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbv() (eax, edx uint32)

// simdDetect reports whether the host can execute the AVX2 kernels:
// the CPU must advertise AVX and AVX2, and the OS must save/restore
// the YMM state (OSXSAVE set and XCR0 bits 1..2 enabled). This is the
// same ladder the Go runtime uses for its own AVX2 dispatch.
func simdDetect() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// maronnaLocation4 is the 4-wide f64 location pass: one fixed-point
// location step of four lanes in lockstep. xt and yt point to the
// lanes' quad-packed window tiles (obs-major: element (i, s) of the
// quad at offset i*4+s); t1..i12 point to the four lanes' location
// and inverse-scatter entries; sw/sx/sy receive the four lanes' Huber
// w1 sums. Per lane the arithmetic is expression-for-expression
// maronnaLocation — same values, same order — so results are
// bit-identical to the scalar pass.
//
//go:noescape
func maronnaLocation4(xt, yt *float64, m int, t1, t2, i11, i22, i12 *float64, k, k2 float64, sw, sx, sy *float64)

// maronnaScatter4 is the 4-wide f64 scatter pass, recording the
// per-observation Huber w2 weights into the quad-packed tile wt and
// the four lanes' scatter sums into n11/n22/n12. Bit-identical to
// maronnaScatter per lane.
//
//go:noescape
func maronnaScatter4(xt, yt, wt *float64, m int, t1, t2, i11, i22, i12 *float64, k2 float64, n11, n22, n12 *float64)

// maronnaLocation8f is the 8-wide f32 location pass for the
// approximate iteration lane (oct-packed tiles, element (i, s) at
// offset i*8+s). The f32 lane has an accuracy contract rather than a
// bit-identity one, but the kernel still mirrors maronnaLocation32's
// operation order exactly.
//
//go:noescape
func maronnaLocation8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k, k2 float32, sw, sx, sy *float32)

// maronnaScatter8f is the 8-wide f32 scatter pass. Like the scalar
// maronnaScatter32 it records no weights (the weights that matter are
// produced by the f64 polish).
//
//go:noescape
func maronnaScatter8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k2 float32, n11, n22, n12 *float32)
