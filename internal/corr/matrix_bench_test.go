package corr

import (
	"fmt"
	"testing"
)

// benchEngines compares the matrix engine against the per-pair
// reference on an identical day workload, per correlation request.
func benchEngines(b *testing.B, types []Type) {
	rets := marketReturns(b, 10, 20080301)
	cfg := EngineConfig{M: 100, Workers: 1}
	for _, bc := range []struct {
		name string
		run  func() ([]*Series, error)
	}{
		{"matrix", func() ([]*Series, error) { return ComputeMatrixSeries(cfg, types, rets) }},
		{"reference", func() ([]*Series, error) { return ComputeSeriesMultiReference(cfg, types, rets) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bc.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatrixEnginePearsonDay(b *testing.B) {
	benchEngines(b, []Type{Pearson})
}

func BenchmarkMatrixEngineFusedRobustDay(b *testing.B) {
	benchEngines(b, []Type{Maronna, Combined})
}

func BenchmarkMatrixEngineAllTypesDay(b *testing.B) {
	benchEngines(b, []Type{Pearson, Maronna, Combined})
}

// BenchmarkMatrixEngineTileSize exposes the cache-tiling knob so the
// default can be revisited on new hardware.
func BenchmarkMatrixEngineTileSize(b *testing.B) {
	rets := marketReturns(b, 10, 20080301)
	for _, tile := range []int{1, 16, 64, 256, 1 << 30} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			cfg := EngineConfig{M: 100, Workers: 1, TileSize: tile}
			for i := 0; i < b.N; i++ {
				if _, err := ComputeMatrixSeries(cfg, []Type{Pearson}, rets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
