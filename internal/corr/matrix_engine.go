package corr

import (
	"math"

	"marketminer/internal/sched"
	"marketminer/internal/taq"
)

// The matrix-level engine. The per-pair engine (now
// ComputeSeriesMultiReference) treats every pair as an island: each of
// the ~n²/2 pairs re-derives the sliding statistics of its two member
// stocks — five rolling Pearson sums of which four are univariate, and
// the median/MAD initialisers that seed every cold Maronna fit. At
// matrix level that work is shared: a stock's window sums and robust
// initialisers are the same in all ~n−1 pairs containing it, so this
// engine computes them once per stock per window (O(n) work) and the
// per-pair loop touches only genuinely bivariate state (the cross
// moment Σxy and the warm Maronna chain).
//
// Pairs are grouped into cache tiles — blocks of the pair triangle
// induced by splitting the stock axis into runs of tileDim stocks — so
// a tile's inner loop re-reads the same few stock rows while they are
// hot. Tiles are scheduled by work stealing (sched.Steal) because the
// robust fixed point's iteration count varies ~3× between windows and
// a static split strands workers behind the slowest range.
//
// Determinism: every pair owns its output row and its warm-chain state,
// each tile is executed by exactly one worker, and the per-window
// arithmetic is literally the reference engine's expressions evaluated
// on identically-derived inputs — so output is bit-identical to the
// reference for every worker count and tile size, which is what keeps
// the sharded sweep's byte-determinism guarantee intact.

// DefaultTileSize is the default pair budget per cache tile (a tile of
// tileDim² pairs spans 2·tileDim stock rows ≈ 13 KB of window data at
// M = 100, comfortably L1-resident alongside the tile's warm state).
const DefaultTileSize = 64

// tileDim converts a pair budget into the stock-block edge length.
func tileDim(tileSize int) int {
	d := int(math.Sqrt(float64(tileSize)))
	if d < 1 {
		d = 1
	}
	return d
}

// buildTiles groups the requested pairs by their (⌊i/dim⌋, ⌊j/dim⌋)
// stock-block coordinates, preserving request order within a tile.
// Tile identity never affects values, only locality, so any grouping
// is correct; this one maximises stock-row reuse.
func buildTiles(pairs []int, allPairs []taq.Pair, tileSize int) [][]int {
	dim := tileDim(tileSize)
	index := make(map[[2]int]int)
	var tiles [][]int
	for k, pid := range pairs {
		p := allPairs[pid]
		key := [2]int{p.I / dim, p.J / dim}
		ti, ok := index[key]
		if !ok {
			ti = len(tiles)
			index[key] = ti
			tiles = append(tiles, nil)
		}
		tiles[ti] = append(tiles[ti], k)
	}
	return tiles
}

// stockMoments holds one stock's sliding-window running sums for every
// window step. They are computed with the exact re-anchored recurrence
// the per-pair reference uses (rollingPearson), so every downstream
// expression sees bit-identical inputs.
type stockMoments struct {
	sum   []float64 // Σx over window t
	sumSq []float64 // Σx² over window t
	inv   []float64 // 1/√(Σx² − (Σx)²/m) over window t; 0 when degenerate
}

// pearsonInvStd is the shared univariate normaliser 1/√(sxx − sx²/m),
// or 0 when the variance is non-positive. The per-pair reference emit
// uses this exact expression inline, so hoisting it per stock is
// bit-neutral.
func pearsonInvStd(sxx, sx, fm float64) float64 {
	v := sxx - sx*sx/fm
	if v <= 0 {
		return 0
	}
	return 1 / math.Sqrt(v)
}

// computeStockMoments fills mom for series x and window length m,
// re-anchoring the running sums every pearsonReanchorEvery steps
// exactly as the reference does.
func computeStockMoments(x []float64, m int, mom *stockMoments) {
	steps := len(x) - m + 1
	fm := float64(m)
	mom.sum = make([]float64, steps)
	mom.sumSq = make([]float64, steps)
	mom.inv = make([]float64, steps)
	var sx, sxx float64
	for base := 0; base < steps; base += pearsonReanchorEvery {
		sx, sxx = 0, 0
		for i := base; i < base+m; i++ {
			sx += x[i]
			sxx += x[i] * x[i]
		}
		mom.sum[base], mom.sumSq[base] = sx, sxx
		mom.inv[base] = pearsonInvStd(sxx, sx, fm)
		end := base + pearsonReanchorEvery
		if end > steps {
			end = steps
		}
		for t := base + 1; t < end; t++ {
			ox, nx := x[t-1], x[t+m-1]
			sx += nx - ox
			sxx += nx*nx - ox*ox
			mom.sum[t], mom.sumSq[t] = sx, sxx
			mom.inv[t] = pearsonInvStd(sxx, sx, fm)
		}
	}
}

// tileRun is the execution state of one tile: per-pair views of the
// inputs, outputs and shared per-stock state. Pearson runs pair-major
// (each pair slides through the day in a tight inner loop); the robust
// treatments run window-major through the batched kernel — all of the
// tile's pairs advance through window t as lanes of one pairBatch, so
// the fixed-point sweeps stream over the tile's hot stock rows.
type tileRun struct {
	m     int
	steps int
	est   *MaronnaEstimator // nil when no robust treatment is requested
	batch *pairBatch        // worker-owned batched kernel (robust only)
	f32   *pairBatch32      // float32 iteration lane, nil on the exact path
	st    *RobustStats
	warm  []Fit // per-lane warm-chain state across windows

	xs, ys           [][]float64     // member-stock return rows
	xs32, ys32       [][]float32     // float32 mirrors (float32 lane only)
	outP, outM, outC [][]float64     // output rows (nil treatment-wise)
	momX, momY       []*stockMoments // shared univariate moments
	initX, initY     []*ColdInit     // shared t=0 robust initialisers
}

// newTileRun binds tile (a set of indices into pairs) to its inputs,
// outputs and shared per-stock state. batch is the calling worker's
// reusable kernel; nil allocates a fresh one. returns32, non-nil only
// on the float32 lane, holds the per-stock float32 mirrors of returns.
func newTileRun(cfg *EngineConfig, tile []int, pairs []int, allPairs []taq.Pair,
	returns [][]float64, returns32 [][]float32, outP, outM, outC [][]float64,
	moments []stockMoments, inits []ColdInit,
	est *MaronnaEstimator, batch *pairBatch, st *RobustStats) *tileRun {

	steps := len(returns[0]) - cfg.M + 1
	tr := &tileRun{m: cfg.M, steps: steps, est: est, st: st}
	np := len(tile)
	tr.xs = make([][]float64, np)
	tr.ys = make([][]float64, np)
	if outP != nil {
		tr.outP = make([][]float64, np)
		tr.momX = make([]*stockMoments, np)
		tr.momY = make([]*stockMoments, np)
	}
	if est != nil {
		if batch == nil {
			batch = newPairBatch(est.Config(), !cfg.DisableSIMD)
		}
		tr.batch = batch
		tr.warm = make([]Fit, np)
		tr.initX = make([]*ColdInit, np)
		tr.initY = make([]*ColdInit, np)
		if outM != nil {
			tr.outM = make([][]float64, np)
		}
		if outC != nil {
			tr.outC = make([][]float64, np)
		}
		if returns32 != nil {
			tr.f32 = batch.lane32(est.Config())
			tr.xs32 = make([][]float32, np)
			tr.ys32 = make([][]float32, np)
		}
	}
	for l, k := range tile {
		p := allPairs[pairs[k]]
		tr.xs[l] = returns[p.I]
		tr.ys[l] = returns[p.J]
		if outP != nil {
			tr.outP[l] = outP[k]
			tr.momX[l] = &moments[p.I]
			tr.momY[l] = &moments[p.J]
		}
		if est != nil {
			if outM != nil {
				tr.outM[l] = outM[k]
			}
			if outC != nil {
				tr.outC[l] = outC[k]
			}
			tr.initX[l] = &inits[p.I]
			tr.initY[l] = &inits[p.J]
			if returns32 != nil {
				tr.xs32[l] = returns32[p.I]
				tr.ys32[l] = returns32[p.J]
			}
		}
	}
	return tr
}

// rollingPearsonShared is rollingPearson with the four univariate sums
// replaced by reads of the shared per-stock moments: only the cross
// moment Σxy rolls per pair. Same recurrence, re-anchor cadence and
// emit expression as the reference, so dst is bit-identical to it.
func rollingPearsonShared(x, y []float64, m int, dst []float64, mx, my *stockMoments) {
	steps := len(x) - m + 1
	fm := float64(m)
	sums, invX := mx.sum, mx.inv
	sumY, invY := my.sum, my.inv
	var sxy float64
	emit := func(t int) {
		rx, ry := invX[t], invY[t]
		if rx == 0 || ry == 0 {
			dst[t] = 0
			return
		}
		dst[t] = clampCorr((sxy - sums[t]*sumY[t]/fm) * rx * ry)
	}
	for base := 0; base < steps; base += pearsonReanchorEvery {
		sxy = 0
		for i := base; i < base+m; i++ {
			sxy += x[i] * y[i]
		}
		emit(base)
		end := base + pearsonReanchorEvery
		if end > steps {
			end = steps
		}
		for t := base + 1; t < end; t++ {
			sxy += x[t+m-1]*y[t+m-1] - x[t-1]*y[t-1]
			emit(t)
		}
	}
}

// runRobust slides every pair of the tile through the day window-major:
// at each step t the tile's pairs are enqueued as lanes of the batched
// kernel, one batch run resolves them all, and each lane's accepted fit
// both fills the output row and seeds the lane's warm chain for t+1.
// The t=0 cold start (every pair takes it) reuses the shared per-stock
// initialisers; later cold fallbacks recompute inline inside the batch,
// which yields the same values.
func (tr *tileRun) runRobust() {
	b := tr.batch
	m := tr.m
	if tr.f32 != nil {
		tr.f32.begin(m, len(tr.xs))
	} else {
		b.begin(m, len(tr.xs))
	}
	for t := 0; t < tr.steps; t++ {
		for l := range tr.xs {
			var ix, iy *ColdInit
			if t == 0 {
				ix, iy = tr.initX[l], tr.initY[l]
			}
			if tr.f32 != nil {
				tr.f32.add(tr.xs32[l][t:t+m], tr.ys32[l][t:t+m],
					tr.xs[l][t:t+m], tr.ys[l][t:t+m], &tr.warm[l], ix, iy, l)
			} else {
				b.add(tr.xs[l][t:t+m], tr.ys[l][t:t+m], &tr.warm[l], ix, iy, l, tr.st)
			}
		}
		if tr.f32 != nil {
			tr.f32.run(tr.st)
		} else {
			b.run(tr.st)
		}
		for l := range tr.xs {
			f := b.fits[l]
			tr.warm[l] = f
			if tr.outM != nil {
				tr.outM[l][t] = f.Rho
			}
			if tr.outC != nil {
				xw, yw := tr.xs[l][t:t+m], tr.ys[l][t:t+m]
				tr.outC[l][t] = CombinedFromFit(xw, yw, f.Rho, b.wOut[l])
			}
		}
	}
}

// run executes every pair of the tile over all window steps. After
// warmup (batch sized) it allocates nothing — the steady-state
// zero-alloc gate covers it.
func (tr *tileRun) run() {
	for l := range tr.xs {
		if tr.outP != nil {
			rollingPearsonShared(tr.xs[l], tr.ys[l], tr.m, tr.outP[l], tr.momX[l], tr.momY[l])
		}
	}
	if tr.est != nil {
		tr.runRobust()
	}
}

// ComputeMatrixSeries computes the correlation series of every
// requested pair for every requested treatment in one matrix-level
// pass: per-stock sliding statistics hoisted out of the per-pair loop,
// the pair triangle tiled into cache-sized blocks, and tiles scheduled
// across workers by work stealing. See the package comment at the top
// of this file for the sharing/tiling/determinism design.
//
// It is the computation behind ComputeSeriesMulti; output is
// bit-identical to ComputeSeriesMultiReference for every worker count
// and tile size.
func ComputeMatrixSeries(cfg EngineConfig, types []Type, returns [][]float64) ([]*Series, error) {
	pairs, outs, err := prepareSeriesRequest(cfg, types, returns)
	if err != nil {
		return nil, err
	}
	n := len(returns)
	allPairs := taq.AllPairs(n)

	var outP, outM, outC [][]float64
	for oi, ty := range types {
		switch ty {
		case Pearson:
			outP = outs[oi].Corr
		case Maronna:
			outM = outs[oi].Corr
		case Combined:
			outC = outs[oi].Corr
		}
	}
	robust := outM != nil || outC != nil

	// Mark the stocks the request actually touches; pair-block subsets
	// (the sweep orchestrator's unit of work) only pay for theirs.
	used := make([]bool, n)
	for _, pid := range pairs {
		p := allPairs[pid]
		used[p.I] = true
		used[p.J] = true
	}

	// Shared per-stock state, computed once per stock (per window where
	// windowed). O(n·steps) work against the per-pair phase's
	// O(n²·steps); serial is already negligible and keeps it trivially
	// deterministic.
	var moments []stockMoments
	if outP != nil {
		moments = make([]stockMoments, n)
		for i, u := range used {
			if u {
				computeStockMoments(returns[i], cfg.M, &moments[i])
			}
		}
	}
	var inits []ColdInit
	var returns32 [][]float32
	if robust {
		inits = make([]ColdInit, n)
		buf := make([]float64, cfg.M)
		for i, u := range used {
			if u {
				inits[i] = ColdInitOf(buf, returns[i][:cfg.M])
			}
		}
		if cfg.Float32 {
			// The float32 lane iterates on single-precision mirrors of
			// the return rows, converted once per stock per day.
			returns32 = make([][]float32, n)
			for i, u := range used {
				if u {
					row := returns[i]
					r32 := make([]float32, len(row))
					for t, v := range row {
						r32[t] = float32(v)
					}
					returns32[i] = r32
				}
			}
		}
	}

	tiles := buildTiles(pairs, allPairs, cfg.tileSize())
	workers := cfg.workers()
	if workers > len(tiles) {
		workers = len(tiles)
	}
	if workers < 1 {
		workers = 1
	}

	var est *MaronnaEstimator
	var workerStats []RobustStats
	if robust {
		est = NewMaronnaEstimator(cfg.maronna())
		workerStats = make([]RobustStats, workers)
		for w := range workerStats {
			workerStats[w].IterHist = make([]int, cfg.maronna().MaxIter+1)
		}
	}
	workerBatch := make([]*pairBatch, workers)

	sched.Steal(workers, len(tiles), func(w, ti int) {
		var st *RobustStats
		if robust {
			st = &workerStats[w]
		}
		tr := newTileRun(&cfg, tiles[ti], pairs, allPairs, returns, returns32,
			outP, outM, outC, moments, inits, est, workerBatch[w], st)
		tr.run()
		workerBatch[w] = tr.batch
	})

	if robust {
		total := &RobustStats{IterHist: make([]int, cfg.maronna().MaxIter+1)}
		for w := range workerStats {
			total.Merge(&workerStats[w])
		}
		for oi, ty := range types {
			if ty == Maronna || ty == Combined {
				outs[oi].Robust = total
			}
		}
	}
	return outs, nil
}
