package corr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// bivariate generates n samples with target correlation rho.
func bivariate(rng *rand.Rand, n int, rho float64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	c := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x[i] = a
		y[i] = rho*a + c*b
	}
	return x, y
}

func TestTypeStringAndParse(t *testing.T) {
	for _, ty := range Types() {
		parsed, err := ParseType(ty.String())
		if err != nil || parsed != ty {
			t.Errorf("round trip of %v failed: %v %v", ty, parsed, err)
		}
	}
	if _, err := ParseType("spearman"); err == nil {
		t.Error("unknown type should error")
	}
	if s := Type(42).String(); s != "Type(42)" {
		t.Errorf("unknown String = %q", s)
	}
	if ty, err := ParseType("  PEARSON "); err != nil || ty != Pearson {
		t.Errorf("case/space-insensitive parse failed: %v %v", ty, err)
	}
}

func TestPearsonExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	// y perfectly linear in x → correlation 1; negated → -1.
	y := []float64{2, 4, 6, 8, 10}
	approx(t, PearsonCorr(x, y), 1, 1e-12, "Pearson(+linear)")
	yn := []float64{-2, -4, -6, -8, -10}
	approx(t, PearsonCorr(x, yn), -1, 1e-12, "Pearson(-linear)")
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 3, 2, 4}
	// Hand-computed: cov = 2.5/4... use reference value 0.8.
	approx(t, PearsonCorr(x, y), 0.8, 1e-12, "Pearson(known)")
}

func TestPearsonDegenerate(t *testing.T) {
	if PearsonCorr(nil, nil) != 0 {
		t.Error("empty input should give 0")
	}
	if PearsonCorr([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("length mismatch should give 0")
	}
	if PearsonCorr([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Error("constant series should give 0")
	}
}

func TestPearsonRecoversRho(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rho := range []float64{-0.8, -0.3, 0, 0.5, 0.9} {
		x, y := bivariate(rng, 20000, rho)
		approx(t, PearsonCorr(x, y), rho, 0.03, "Pearson recovery")
	}
}

func TestWeightedPearsonUniformMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := bivariate(rng, 500, 0.6)
	w := make([]float64, len(x))
	for i := range w {
		w[i] = 0.7
	}
	approx(t, WeightedPearson(x, y, w), PearsonCorr(x, y), 1e-9, "WeightedPearson(uniform)")
}

func TestWeightedPearsonZeroWeightDropsOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := bivariate(rng, 300, 0.9)
	w := make([]float64, len(x))
	for i := range w {
		w[i] = 1
	}
	// Poison one observation, then zero-weight it: must match the
	// unpoisoned estimate on the remaining data.
	cleanC := PearsonCorr(x[1:], y[1:])
	x[0], y[0] = 100, -100
	w[0] = 0
	approx(t, WeightedPearson(x, y, w), cleanC, 1e-9, "WeightedPearson(drop)")
}

func TestWeightedPearsonDegenerate(t *testing.T) {
	if WeightedPearson([]float64{1, 2}, []float64{1, 2}, []float64{0, 0}) != 0 {
		t.Error("all-zero weights should give 0")
	}
	if WeightedPearson([]float64{1}, []float64{1, 2}, []float64{1}) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestMaronnaAgreesWithPearsonOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	for _, rho := range []float64{-0.7, 0, 0.4, 0.85} {
		x, y := bivariate(rng, 3000, rho)
		mc := est.Corr(x, y)
		pc := PearsonCorr(x, y)
		approx(t, mc, pc, 0.05, "Maronna vs Pearson clean")
	}
}

func TestMaronnaRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := bivariate(rng, 400, 0.9)
	// Contaminate 5% of points with gross anti-correlated outliers.
	for i := 0; i < 20; i++ {
		k := rng.Intn(len(x))
		x[k] = 15
		y[k] = -15
	}
	pc := PearsonCorr(x, y)
	mc := NewMaronnaEstimator(DefaultMaronnaConfig()).Corr(x, y)
	if mc <= pc+0.1 {
		t.Errorf("Maronna (%v) should resist outliers better than Pearson (%v)", mc, pc)
	}
	if mc < 0.7 {
		t.Errorf("Maronna = %v, want near the true 0.9 despite contamination", mc)
	}
}

func TestMaronnaDegenerate(t *testing.T) {
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	if est.Corr([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}) != 0 {
		t.Error("constant series should give 0")
	}
	if est.Corr(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
	if est.Corr([]float64{1, 2}, []float64{5}) != 0 {
		t.Error("mismatch should give 0")
	}
}

func TestMaronnaPerfectCorrelation(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	rng := rand.New(rand.NewSource(6))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2 * x[i]
	}
	c := NewMaronnaEstimator(DefaultMaronnaConfig()).Corr(x, y)
	if c < 0.99 {
		t.Errorf("Maronna of perfectly dependent data = %v, want ≈1", c)
	}
}

func TestMaronnaConfigSanitized(t *testing.T) {
	est := NewMaronnaEstimator(MaronnaConfig{})
	rng := rand.New(rand.NewSource(7))
	x, y := bivariate(rng, 200, 0.5)
	c := est.Corr(x, y)
	if c < 0.2 || c > 0.8 {
		t.Errorf("sanitized-config Maronna = %v, want near 0.5", c)
	}
}

func TestMaronnaScratchReuse(t *testing.T) {
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	rng := rand.New(rand.NewSource(8))
	x, y := bivariate(rng, 150, 0.6)
	c1, sc := est.CorrScratch(x, y, nil)
	c2, _ := est.CorrScratch(x, y, sc)
	if c1 != c2 {
		t.Errorf("scratch reuse changed result: %v vs %v", c1, c2)
	}
	if len(sc.Weights()) != len(x) {
		t.Errorf("weights length = %d", len(sc.Weights()))
	}
	for _, w := range sc.Weights() {
		if w < 0 || w > 1 {
			t.Errorf("weight %v outside [0,1]", w)
		}
	}
}

func TestCombinedBetweenHalves(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := bivariate(rng, 500, 0.7)
	ce := NewCombinedEstimator(DefaultMaronnaConfig())
	c := ce.Corr(x, y)
	if c < 0.5 || c > 0.9 {
		t.Errorf("Combined = %v, want near 0.7", c)
	}
	if ce.Type() != Combined {
		t.Error("Type() wrong")
	}
}

func TestCombinedRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := bivariate(rng, 400, 0.9)
	for i := 0; i < 20; i++ {
		k := rng.Intn(len(x))
		x[k], y[k] = 12, -12
	}
	pc := PearsonCorr(x, y)
	cc := NewCombinedEstimator(DefaultMaronnaConfig()).Corr(x, y)
	if cc <= pc {
		t.Errorf("Combined (%v) should beat Pearson (%v) under contamination", cc, pc)
	}
}

func TestNewEstimatorDispatch(t *testing.T) {
	for _, ty := range Types() {
		est, err := NewEstimator(ty)
		if err != nil {
			t.Fatalf("%v: %v", ty, err)
		}
		if est.Type() != ty {
			t.Errorf("estimator type mismatch: %v vs %v", est.Type(), ty)
		}
	}
	if _, err := NewEstimator(Type(9)); err == nil {
		t.Error("unknown type should error")
	}
}

func TestEstimatorsBoundedProperty(t *testing.T) {
	ests := []Estimator{}
	for _, ty := range Types() {
		e, _ := NewEstimator(ty)
		ests = append(ests, e)
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 4
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp(rng.Float64()*4)
			y[i] = rng.NormFloat64() * math.Exp(rng.Float64()*4)
		}
		for _, e := range ests {
			c := e.Corr(x, y)
			if math.IsNaN(c) || c < -1 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEstimatorsSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := bivariate(rng, 80, rng.Float64()*1.8-0.9)
		for _, ty := range Types() {
			e, _ := NewEstimator(ty)
			if math.Abs(e.Corr(x, y)-e.Corr(y, x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
