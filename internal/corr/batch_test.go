package corr

import (
	"math"
	"math/rand"
	"testing"
)

// fitsBitEqual compares two Fits field-by-field with bitwise float
// equality, so NaN-poisoned lanes (where every statistic is NaN in
// both implementations) still compare equal.
func fitsBitEqual(a, b Fit) bool {
	feq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return feq(a.T1, b.T1) && feq(a.T2, b.T2) &&
		feq(a.V11, b.V11) && feq(a.V22, b.V22) && feq(a.V12, b.V12) &&
		feq(a.Rho, b.Rho) &&
		a.Iters == b.Iters && a.Converged == b.Converged &&
		a.Valid == b.Valid && a.Seeded == b.Seeded
}

// TestBatchDegenerateLanesMatchReference is the degenerate-batch gate:
// a single batch mixing healthy, zero-variance, constant, perfectly
// collinear and NaN-poisoned pairs — plus warm lanes whose seeds are
// good, degenerate and poisoned — must produce, for every lane, a Fit
// and weight row bit-identical to running that pair alone through the
// per-pair reference, and the aggregate RobustStats must agree. This
// pins the swap-to-end compaction: lanes finishing at wildly different
// times (some before the first sweep) must not perturb each other.
func TestBatchDegenerateLanesMatchReference(t *testing.T) {
	const m = 60
	rng := rand.New(rand.NewSource(99))
	mk := func(corrupt func(x, y []float64)) (x, y []float64) {
		x = make([]float64, m)
		y = make([]float64, m)
		for i := range x {
			f := rng.NormFloat64()
			x[i] = f + 0.5*rng.NormFloat64()
			y[i] = f + 0.5*rng.NormFloat64()
		}
		if corrupt != nil {
			corrupt(x, y)
		}
		return x, y
	}

	type lane struct {
		name string
		x, y []float64
		warm *Fit
	}
	var lanes []lane

	// Healthy pair that converges normally.
	x0, y0 := mk(nil)
	lanes = append(lanes, lane{"healthy", x0, y0, nil})

	// Zero-variance x: the cold init's scale is 0, so the lane must
	// resolve to the empty Fit before the first sweep.
	x1, y1 := mk(func(x, y []float64) {
		for i := range x {
			x[i] = 0
		}
	})
	lanes = append(lanes, lane{"zero-variance-x", x1, y1, nil})

	// Constant (non-zero) y: same degenerate path, other series.
	x2, y2 := mk(func(x, y []float64) {
		for i := range y {
			y[i] = 0.0125
		}
	})
	lanes = append(lanes, lane{"constant-y", x2, y2, nil})

	// Perfectly collinear pair: the scatter determinant collapses and
	// the reference breaks out accepting the current state.
	x3, y3 := mk(func(x, y []float64) {
		copy(y, x)
	})
	lanes = append(lanes, lane{"collinear", x3, y3, nil})

	// NaN-poisoned pair: NaNs propagate through every pass, the
	// convergence test never fires, and the iteration budget runs out.
	// (The engines reject non-finite returns up front, so this path is
	// reachable only through the batch API itself — exactly why this
	// test drives pairBatch directly.)
	x4, y4 := mk(func(x, y []float64) {
		x[7] = math.NaN()
		y[41] = math.NaN()
	})
	lanes = append(lanes, lane{"nan-poisoned", x4, y4, nil})

	// Warm lane with a genuine previous fixed point (strict success).
	x5, y5 := mk(nil)
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	seed5, _ := est.FitScratch(x5[:m-1], y5[:m-1], nil, nil)
	if !seed5.Valid {
		t.Fatal("warm seed unexpectedly invalid")
	}
	lanes = append(lanes, lane{"warm-good", x5, y5, &seed5})

	// Warm lane whose seed has a singular scatter: the strict attempt
	// dies on the determinant check at iteration zero and must restart
	// cold in place.
	x6, y6 := mk(nil)
	bad := Fit{T1: 0, T2: 0, V11: 1, V22: 1, V12: 1, Valid: true}
	lanes = append(lanes, lane{"warm-singular", x6, y6, &bad})

	// Warm lane with a NaN-poisoned seed: strict pass wanders, budget
	// exhausts, cold restart must recover the same answer as alone.
	x7, y7 := mk(nil)
	poison := Fit{T1: math.NaN(), T2: 0, V11: 1, V22: 1, V12: 0, Valid: true}
	lanes = append(lanes, lane{"warm-nan-seed", x7, y7, &poison})

	// Reference: every pair alone through the per-pair kernel.
	wantFits := make([]Fit, len(lanes))
	wantW := make([][]float64, len(lanes))
	wantStats := &RobustStats{IterHist: make([]int, est.Config().MaxIter+1)}
	var sc *Scratch
	for i, ln := range lanes {
		var f Fit
		f, sc = est.FitScratchShared(ln.x, ln.y, sc, ln.warm, nil, nil)
		wantFits[i] = f
		wantW[i] = append([]float64(nil), sc.Weights()...)
		wantStats.record(f, ln.warm != nil && ln.warm.Valid)
	}

	// One batch holding every lane at once, in both insertion orders
	// (compaction reorders differently, results must not care) and
	// under both dispatch tiers (the vector path must survive the same
	// degeneracy zoo bit-for-bit; on hosts without AVX2 both passes run
	// scalar, which is still a valid run of the contract).
	for _, simd := range []bool{false, true} {
		for _, reverse := range []bool{false, true} {
			b := newPairBatch(est.Config(), simd)
			b.begin(m, len(lanes))
			st := &RobustStats{IterHist: make([]int, est.Config().MaxIter+1)}
			for i := range lanes {
				ln := lanes[i]
				if reverse {
					ln = lanes[len(lanes)-1-i]
				}
				tag := i
				if reverse {
					tag = len(lanes) - 1 - i
				}
				b.add(ln.x, ln.y, ln.warm, nil, nil, tag, st)
			}
			b.run(st)

			for i, ln := range lanes {
				if !fitsBitEqual(b.fits[i], wantFits[i]) {
					t.Fatalf("simd=%v reverse=%v lane %q: batch fit %+v, reference %+v", simd, reverse, ln.name, b.fits[i], wantFits[i])
				}
				for j := range wantW[i] {
					if math.Float64bits(b.wOut[i][j]) != math.Float64bits(wantW[i][j]) {
						t.Fatalf("simd=%v reverse=%v lane %q: weight[%d] = %v, reference %v", simd, reverse, ln.name, j, b.wOut[i][j], wantW[i][j])
					}
				}
			}
			if st.Windows != wantStats.Windows || st.WarmHits != wantStats.WarmHits ||
				st.ColdStarts != wantStats.ColdStarts || st.Fallbacks != wantStats.Fallbacks {
				t.Fatalf("simd=%v reverse=%v: stats %+v, reference %+v", simd, reverse, *st, *wantStats)
			}
			for i := range wantStats.IterHist {
				if st.IterHist[i] != wantStats.IterHist[i] {
					t.Fatalf("simd=%v reverse=%v: IterHist[%d] = %d, reference %d", simd, reverse, i, st.IterHist[i], wantStats.IterHist[i])
				}
			}
			if st.BatchSweeps == 0 || st.BatchLaneSteps == 0 || len(st.ActiveHist) == 0 {
				t.Fatalf("simd=%v reverse=%v: batch telemetry empty: %+v", simd, reverse, *st)
			}
		}
	}
}

// float32LaneMaxDelta runs the same request through the exact engine
// and the float32 lane and returns the largest |Δρ| across every pair,
// window and series, requiring bit-identical NaN placement.
// disableSIMD selects the float32 lane's dispatch tier so the 8-wide
// vector kernel and the scalar iteration are held to the same ceiling
// (the exact baseline is tier-independent by the bit-identity
// contract).
func float32LaneMaxDelta(t *testing.T, types []Type, rets [][]float64, m int, disableSIMD bool) float64 {
	t.Helper()
	exact, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: 1}, types, rets)
	if err != nil {
		t.Fatal(err)
	}
	appx, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: 2, TileSize: 8, Float32: true, DisableSIMD: disableSIMD}, types, rets)
	if err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for oi := range exact {
		for k := range exact[oi].Corr {
			for w := range exact[oi].Corr[k] {
				e, a := exact[oi].Corr[k][w], appx[oi].Corr[k][w]
				if math.IsNaN(e) != math.IsNaN(a) {
					t.Fatalf("series %v pair %d window %d: exact %v float32 %v (NaN placement differs)",
						exact[oi].Type, k, w, e, a)
				}
				if d := math.Abs(e - a); d > maxd {
					maxd = d
				}
			}
		}
	}
	return maxd
}

// float32AccuracyBound is the property-test ceiling on |Δρ| between
// the float32 iteration lane and the exact double-precision kernel.
// Measured deltas sit near 3e-6 (the lane converges at 1e-5 in single
// precision, then two full f64 polish iterations contract the error
// well below the f32 ulp); the bound leaves an order of magnitude of
// headroom while still catching any real precision regression.
const float32AccuracyBound = 5e-5

// TestFloat32LaneAccuracy is the accuracy gate for the opt-in float32
// lane: across the market-calibrated universe and a synthetic universe
// salted with degenerate stocks, the approximate path must stay within
// float32AccuracyBound of the exact kernel for both robust types.
func TestFloat32LaneAccuracy(t *testing.T) {
	mkt := marketReturns(t, 8, 20080305)
	for _, disableSIMD := range []bool{false, true} {
		if d := float32LaneMaxDelta(t, []Type{Maronna, Combined}, mkt, 80, disableSIMD); d > float32AccuracyBound {
			t.Fatalf("market universe (disableSIMD=%v): max |Δρ| = %g, bound %g", disableSIMD, d, float32AccuracyBound)
		}
	}

	// Synthetic universe: heavy tails, a constant stock (degenerate
	// cold inits in every window), a near-collinear pair, and a stock
	// with a huge level shift mid-stream (stresses the f32 dynamic
	// range and the warm-chain strict failures).
	rng := rand.New(rand.NewSource(7))
	const n, T, m = 7, 300, 60
	rets := make([][]float64, n)
	for s := range rets {
		rets[s] = make([]float64, T)
		for i := range rets[s] {
			v := 1e-3 * rng.NormFloat64()
			if rng.Intn(37) == 0 {
				v *= 40 // fat tail
			}
			rets[s][i] = v
		}
	}
	for i := range rets[2] {
		rets[2][i] = 0 // constant stock: every window degenerate
	}
	for i := range rets[3] {
		rets[3][i] = rets[4][i] + 1e-9*rng.NormFloat64() // near-collinear
	}
	for i := T / 2; i < T; i++ {
		rets[5][i] *= 1e4 // level shift
	}
	// Near-collinear pairs (ρ within float32 noise of 1) legitimately
	// cost a few extra ULPs, so the adversarial bound is looser; the
	// measured worst case sits near 6e-5.
	for _, disableSIMD := range []bool{false, true} {
		if d := float32LaneMaxDelta(t, []Type{Maronna, Combined}, rets, m, disableSIMD); d > 10*float32AccuracyBound {
			t.Fatalf("synthetic universe (disableSIMD=%v): max |Δρ| = %g, bound %g", disableSIMD, d, 10*float32AccuracyBound)
		}
	}
}
