package corr

import (
	"math"
	"math/rand"
	"testing"

	"marketminer/internal/taq"
)

// syntheticReturns builds n stocks × T returns where stocks 0 and 1
// share a common factor (high correlation) and the rest are noise.
func syntheticReturns(seed int64, n, T int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rets := make([][]float64, n)
	for i := range rets {
		rets[i] = make([]float64, T)
	}
	for t := 0; t < T; t++ {
		f := rng.NormFloat64()
		for i := 0; i < n; i++ {
			eps := rng.NormFloat64()
			switch i {
			case 0:
				rets[i][t] = f + 0.2*eps
			case 1:
				rets[i][t] = f + 0.25*eps
			default:
				rets[i][t] = eps
			}
		}
	}
	return rets
}

func TestComputeSeriesShape(t *testing.T) {
	rets := syntheticReturns(1, 4, 120)
	s, err := ComputeSeries(EngineConfig{Type: Pearson, M: 50}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if s.FirstS != 50 {
		t.Errorf("FirstS = %d", s.FirstS)
	}
	if len(s.Pairs) != 6 {
		t.Errorf("pairs = %d, want 6", len(s.Pairs))
	}
	if s.Len() != 120-50+1 {
		t.Errorf("Len = %d, want 71", s.Len())
	}
}

func TestComputeSeriesMatchesDirectPearson(t *testing.T) {
	rets := syntheticReturns(2, 3, 90)
	s, err := ComputeSeries(EngineConfig{Type: Pearson, M: 30, Workers: 2}, rets)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the rolling computation against the direct form at
	// several offsets for every pair.
	pairs := taq.AllPairs(3)
	for k, p := range pairs {
		for _, tt := range []int{0, 1, 17, 60} {
			want := PearsonCorr(rets[p.I][tt:tt+30], rets[p.J][tt:tt+30])
			got := s.Corr[k][tt]
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("pair %v offset %d: rolling %v direct %v", p, tt, got, want)
			}
		}
	}
}

func TestComputeSeriesDetectsCorrelatedPair(t *testing.T) {
	rets := syntheticReturns(3, 5, 300)
	for _, ty := range Types() {
		s, err := ComputeSeries(EngineConfig{Type: ty, M: 60}, rets)
		if err != nil {
			t.Fatalf("%v: %v", ty, err)
		}
		pid01 := taq.PairID(0, 1, 5)
		series01 := s.PairSeries(pid01)
		mean01 := mean(series01)
		if mean01 < 0.8 {
			t.Errorf("%v: factor pair mean corr = %v, want > 0.8", ty, mean01)
		}
		// An unrelated pair should hover near zero.
		pid23 := taq.PairID(2, 3, 5)
		if m := mean(s.PairSeries(pid23)); math.Abs(m) > 0.25 {
			t.Errorf("%v: noise pair mean corr = %v, want ≈ 0", ty, m)
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestComputeSeriesWorkerInvariance(t *testing.T) {
	rets := syntheticReturns(4, 6, 150)
	for _, ty := range Types() {
		s1, err := ComputeSeries(EngineConfig{Type: ty, M: 40, Workers: 1}, rets)
		if err != nil {
			t.Fatal(err)
		}
		s8, err := ComputeSeries(EngineConfig{Type: ty, M: 40, Workers: 8}, rets)
		if err != nil {
			t.Fatal(err)
		}
		for k := range s1.Corr {
			for u := range s1.Corr[k] {
				if s1.Corr[k][u] != s8.Corr[k][u] {
					t.Fatalf("%v: worker count changed result at pair %d step %d", ty, k, u)
				}
			}
		}
	}
}

func TestComputeSeriesPairSubset(t *testing.T) {
	rets := syntheticReturns(5, 5, 100)
	want := []int{taq.PairID(0, 1, 5), taq.PairID(2, 4, 5)}
	s, err := ComputeSeries(EngineConfig{Type: Pearson, M: 30, Pairs: want}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Corr) != 2 {
		t.Fatalf("computed %d pair series, want 2", len(s.Corr))
	}
	if s.PairSeries(want[1]) == nil {
		t.Error("requested pair missing")
	}
	if s.PairSeries(taq.PairID(0, 2, 5)) != nil {
		t.Error("unrequested pair present")
	}
}

func TestComputeSeriesErrors(t *testing.T) {
	good := syntheticReturns(6, 3, 50)
	if _, err := ComputeSeries(EngineConfig{Type: Pearson, M: 10}, good[:1]); err == nil {
		t.Error("single stock should error")
	}
	ragged := [][]float64{make([]float64, 50), make([]float64, 49)}
	if _, err := ComputeSeries(EngineConfig{Type: Pearson, M: 10}, ragged); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := ComputeSeries(EngineConfig{Type: Pearson, M: 1}, good); err == nil {
		t.Error("M<2 should error")
	}
	if _, err := ComputeSeries(EngineConfig{Type: Pearson, M: 51}, good); err == nil {
		t.Error("window longer than data should error")
	}
	bad := syntheticReturns(7, 3, 50)
	bad[1][10] = math.NaN()
	if _, err := ComputeSeries(EngineConfig{Type: Pearson, M: 10}, bad); err == nil {
		t.Error("NaN return should error")
	}
}

func TestOnlineEngineMatchesBatch(t *testing.T) {
	n, T, m := 4, 80, 25
	rets := syntheticReturns(8, n, T)
	batch, err := ComputeSeries(EngineConfig{Type: Pearson, M: m}, rets)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewOnlineEngine(EngineConfig{Type: Pearson, M: m, Workers: 3}, n)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, n)
	step := 0
	for u := 0; u < T; u++ {
		for i := 0; i < n; i++ {
			vec[i] = rets[i][u]
		}
		mx, err := eng.Push(vec)
		if err != nil {
			t.Fatal(err)
		}
		if u < m-1 {
			if mx != nil {
				t.Fatalf("matrix emitted during warmup at u=%d", u)
			}
			continue
		}
		if mx == nil {
			t.Fatalf("no matrix at u=%d", u)
		}
		for k := range batch.Pairs {
			if math.Abs(mx.AtPair(k)-batch.Corr[k][step]) > 1e-9 {
				t.Fatalf("online/batch mismatch at step %d pair %d: %v vs %v",
					step, k, mx.AtPair(k), batch.Corr[k][step])
			}
		}
		step++
	}
	if step != batch.Len() {
		t.Errorf("online produced %d matrices, batch has %d", step, batch.Len())
	}
}

func TestOnlineEngineMaronna(t *testing.T) {
	n, m := 3, 20
	eng, err := NewOnlineEngine(EngineConfig{Type: Maronna, M: m}, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var last *Matrix
	for u := 0; u < 40; u++ {
		f := rng.NormFloat64()
		vec := []float64{f + 0.1*rng.NormFloat64(), f + 0.1*rng.NormFloat64(), rng.NormFloat64()}
		last, err = eng.Push(vec)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last == nil {
		t.Fatal("no matrix produced")
	}
	if c := last.At(0, 1); c < 0.8 {
		t.Errorf("factor pair corr = %v, want high", c)
	}
	if err := last.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOnlineEngineErrors(t *testing.T) {
	if _, err := NewOnlineEngine(EngineConfig{Type: Pearson, M: 10}, 1); err == nil {
		t.Error("n<2 should error")
	}
	if _, err := NewOnlineEngine(EngineConfig{Type: Pearson, M: 1}, 3); err == nil {
		t.Error("M<2 should error")
	}
	eng, _ := NewOnlineEngine(EngineConfig{Type: Pearson, M: 5}, 3)
	if _, err := eng.Push([]float64{1, 2}); err == nil {
		t.Error("wrong vector length should error")
	}
	if _, err := eng.Push([]float64{1, math.NaN(), 2}); err == nil {
		t.Error("NaN should error")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	if m.Order() != 4 || m.NumPairs() != 6 {
		t.Fatalf("order=%d pairs=%d", m.Order(), m.NumPairs())
	}
	m.Set(1, 3, 0.5)
	if m.At(1, 3) != 0.5 || m.At(3, 1) != 0.5 {
		t.Error("symmetric access broken")
	}
	if m.At(2, 2) != 1 {
		t.Error("diagonal should be 1")
	}
	m.Set(2, 2, 9) // no-op
	if m.At(2, 2) != 1 {
		t.Error("diagonal must be immutable")
	}
	cl := m.Clone()
	cl.Set(1, 3, -0.5)
	if m.At(1, 3) != 0.5 {
		t.Error("Clone must not share storage")
	}
	if len(m.Values()) != 6 {
		t.Error("Values length wrong")
	}
}

func TestMatrixPSD(t *testing.T) {
	// Identity is PSD.
	if !NewMatrix(5).IsPSD(1e-12) {
		t.Error("identity should be PSD")
	}
	// A valid equicorrelation matrix (rho=0.5, n=3) is PSD.
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			m.Set(i, j, 0.5)
		}
	}
	if !m.IsPSD(1e-12) {
		t.Error("equicorrelation 0.5 should be PSD")
	}
	// rho = -0.9 equicorrelation of order 3 is NOT PSD
	// (min eigenvalue 1 + 2·rho = -0.8).
	bad := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			bad.Set(i, j, -0.9)
		}
	}
	if bad.IsPSD(1e-12) {
		t.Error("equicorrelation -0.9 should not be PSD")
	}
}

func TestEnsurePSDRepairs(t *testing.T) {
	bad := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			bad.Set(i, j, -0.9)
		}
	}
	fixed, lambda, err := EnsurePSD(bad, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Error("repair should report λ > 0")
	}
	if !fixed.IsPSD(1e-9) {
		t.Error("repaired matrix not PSD")
	}
	// Repair must preserve sign and ordering.
	if fixed.At(0, 1) >= 0 {
		t.Error("repair flipped the sign")
	}
	// Already-PSD input is returned unchanged with λ=0.
	id := NewMatrix(4)
	same, lambda, err := EnsurePSD(id, 1e-12)
	if err != nil || lambda != 0 || same != id {
		t.Errorf("PSD input should be identity-repaired: %v %v", lambda, err)
	}
}

func TestMatrixValidate(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 0.3)
	if err := m.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	m.Set(0, 2, math.NaN())
	if err := m.Validate(); err == nil {
		t.Error("NaN coefficient accepted")
	}
	m.Set(0, 2, 1.5)
	if err := m.Validate(); err == nil {
		t.Error("out-of-range coefficient accepted")
	}
}

func TestOnlineEngineRepairPSD(t *testing.T) {
	n, m := 5, 12
	eng, err := NewOnlineEngine(EngineConfig{Type: Maronna, M: m, RepairPSD: true}, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var last *Matrix
	for u := 0; u < 30; u++ {
		vec := make([]float64, n)
		f := rng.NormFloat64()
		for i := range vec {
			vec[i] = 0.5*f + rng.NormFloat64()
			// Occasional gross outliers stress the robust estimator
			// into non-PSD territory when estimated pairwise.
			if rng.Float64() < 0.08 {
				vec[i] *= 20
			}
		}
		last, err = eng.Push(vec)
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && !last.IsPSD(1e-8) {
			t.Fatalf("repaired matrix at step %d is not PSD", u)
		}
	}
	if last == nil {
		t.Fatal("no matrix produced")
	}
}

// TestRollingPearsonDriftBounded is the running-sum drift regression:
// over a long adversarial series (mixed magnitudes, persistent offsets,
// huge spikes entering and leaving the window) the O(1) rolling update
// must stay within 1e-9 of the directly-computed coefficient for every
// window, which the periodic re-anchoring guarantees — without it the
// incremental sums drift far past this bound by the end of the series.
func TestRollingPearsonDriftBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const m, T = 100, 20000 // ~26 trading days of 30s intervals
	x := make([]float64, T)
	y := make([]float64, T)
	for i := range x {
		f := rng.NormFloat64()
		// Small return-scale values with a persistent offset so the
		// raw second moments are dominated by the mean (maximum
		// cancellation), plus rare enormous spikes.
		x[i] = 1e-3*(f+0.5*rng.NormFloat64()) + 0.02
		y[i] = 1e-3*(f+0.5*rng.NormFloat64()) - 0.015
		// Spikes three orders of magnitude above the return scale —
		// a cleaned feed's worst case — entering and leaving windows.
		switch {
		case i%619 == 0:
			x[i] += 12
		case i%811 == 0:
			y[i] -= 15
		}
	}
	dst := make([]float64, T-m+1)
	rollingPearson(x, y, m, dst)
	var worst float64
	for tt := 0; tt+m <= T; tt++ {
		want := PearsonCorr(x[tt:tt+m], y[tt:tt+m])
		if d := math.Abs(dst[tt] - want); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("max rolling/direct divergence %v, want < 1e-9", worst)
	}
}
