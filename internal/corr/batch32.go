package corr

import (
	"math"
	"time"
)

// The float32 iteration lane. Profiling puts the robust day almost
// entirely inside the Maronna fixed point, and the fixed point's cost
// is its iteration count: the map contracts linearly, so driving the
// relative scatter residual to the float64 tolerance (1e-8) costs many
// more sweeps than driving it to what single precision can resolve
// (~1e-5, a few ULPs of the scatter entries). The lane exploits that:
// iterate in float32 until the float32 tolerance is met, then polish
// with a fixed, small number of exact float64 iterations so the
// reported fixed point carries full-precision arithmetic. Accuracy is
// bounded by the polished residual; TestFloat32LaneAccuracy and the
// f32_max_abs_rho_delta bench field measure it against the exact path.
//
// Robustness contract: single precision is allowed to give up, never
// to degrade. Any degeneracy on the float32 side — scatter collapse or
// iteration-budget exhaustion on a cold run, a cold initialiser that
// under/overflows float32, NaN contamination, or a polish step that
// collapses — abandons the lane to the exact float64 path
// (FitScratchShared with the same warm/cold inputs), so the worst case
// is the exact answer at the exact cost. Warm (strict) float32
// failures restart cold in float32 first, mirroring the exact kernel's
// warm→cold ladder.
//
// pairBatch32 rides on a parent pairBatch: results (fits, weight rows)
// are published through the parent's tag-indexed slots so the tile
// harvest loop is lane-agnostic.
type pairBatch32 struct {
	parent *pairBatch

	k, k2   float32
	tol     float32 // float32-achievable convergence tolerance
	maxIter int
	polish  int // exact float64 polish iterations after convergence

	est *MaronnaEstimator // exact-path fallback
	sc  *Scratch          // fallback scratch

	m       int
	laneCap int
	active  int

	x32, y32 [][]float32 // single-precision window views
	x64, y64 [][]float64 // exact windows for polish/fallback/weights
	wrow     [][]float64 // per-lane float64 weight rows
	wback    []float64

	t1, t2        []float32
	v11, v22, v12 []float32
	pg, pf        [][5]float32
	havePrev      []bool
	strict        []bool
	attempted     []bool
	wFresh        []bool
	iters         []int
	tag           []int
	ix, iy        []ColdInit
	haveInit      []bool
	warm          []Fit // warm fit copies for the exact fallback

	// SIMD lane-major state, mirroring pairBatch's but oct-blocked for
	// the 8-wide f32 kernels: element i of the lane at position l lives
	// at xt32[(l/8)*8*m + i*8 + l%8]. No weight tile — like the scalar
	// maronnaScatter32, the vector scatter records no weights (the
	// float64 polish writes the ones that matter).
	packed bool
	deferC bool

	xt32, yt32 []float32
	dead, skip []bool

	li11, li22, li12 []float32
	lsw, lsx, lsy    []float32
	lt1n, lt2n       []float32
	ln11, ln22, ln12 []float32
}

// simdMinLanes32 is the smallest active set the f32 phased path packs
// for: one full oct.
const simdMinLanes32 = 8

// float32Tol is the convergence tolerance of the single-precision
// sweeps: ~100 ULPs of a unit-scale scatter, comfortably above float32
// rounding noise yet tight enough that the fixed float64 polish
// (contraction ≈ 0.4/step plus Anderson-free quadratic-ish tail)
// lands within ~1e-6 of the exact fixed point.
const float32Tol = 1e-5

// float32PolishIters is the fixed number of exact iterations run after
// float32 convergence.
const float32PolishIters = 2

func newPairBatch32(parent *pairBatch, cfg MaronnaConfig) *pairBatch32 {
	e := NewMaronnaEstimator(cfg)
	c := e.Config()
	tol := float32(c.Tol)
	if tol < float32Tol {
		tol = float32Tol
	}
	return &pairBatch32{
		parent:  parent,
		k:       float32(c.K),
		k2:      float32(c.K * c.K),
		tol:     tol,
		maxIter: c.MaxIter,
		polish:  float32PolishIters,
		est:     e,
	}
}

// lane32 returns (lazily building) the batch's float32 lane.
func (b *pairBatch) lane32(cfg MaronnaConfig) *pairBatch32 {
	if b.f32lane == nil {
		b.f32lane = newPairBatch32(b, cfg)
	}
	return b.f32lane
}

// begin prepares the lane (and its parent's result slots) for windows
// of length m with up to lanes lanes.
func (b32 *pairBatch32) begin(m, lanes int) {
	b32.parent.begin(m, lanes)
	if m != b32.m || lanes > b32.laneCap {
		b32.grow(m, lanes)
	}
	b32.active = 0
}

func (b32 *pairBatch32) grow(m, lanes int) {
	if lanes < b32.laneCap {
		lanes = b32.laneCap
	}
	b32.m = m
	b32.laneCap = lanes
	b32.x32 = make([][]float32, lanes)
	b32.y32 = make([][]float32, lanes)
	b32.x64 = make([][]float64, lanes)
	b32.y64 = make([][]float64, lanes)
	b32.wrow = make([][]float64, lanes)
	b32.wback = make([]float64, lanes*m)
	b32.t1 = make([]float32, lanes)
	b32.t2 = make([]float32, lanes)
	b32.v11 = make([]float32, lanes)
	b32.v22 = make([]float32, lanes)
	b32.v12 = make([]float32, lanes)
	b32.pg = make([][5]float32, lanes)
	b32.pf = make([][5]float32, lanes)
	b32.havePrev = make([]bool, lanes)
	b32.strict = make([]bool, lanes)
	b32.attempted = make([]bool, lanes)
	b32.wFresh = make([]bool, lanes)
	b32.iters = make([]int, lanes)
	b32.tag = make([]int, lanes)
	b32.ix = make([]ColdInit, lanes)
	b32.iy = make([]ColdInit, lanes)
	b32.haveInit = make([]bool, lanes)
	b32.warm = make([]Fit, lanes)
	b32.dead = make([]bool, lanes)
	b32.skip = make([]bool, lanes)
	if b32.parent.simd {
		tile := (lanes + 7) / 8 * 8 * m
		b32.xt32 = make([]float32, tile)
		b32.yt32 = make([]float32, tile)
		b32.li11 = make([]float32, lanes)
		b32.li22 = make([]float32, lanes)
		b32.li12 = make([]float32, lanes)
		b32.lsw = make([]float32, lanes)
		b32.lsx = make([]float32, lanes)
		b32.lsy = make([]float32, lanes)
		b32.lt1n = make([]float32, lanes)
		b32.lt2n = make([]float32, lanes)
		b32.ln11 = make([]float32, lanes)
		b32.ln22 = make([]float32, lanes)
		b32.ln12 = make([]float32, lanes)
	}
}

// add enqueues one window. x32/y32 must be the single-precision
// mirrors of x64/y64; the remaining arguments match pairBatch.add.
func (b32 *pairBatch32) add(x32, y32 []float32, x64, y64 []float64, warm *Fit, ix, iy *ColdInit, tag int) {
	l := b32.active
	b32.x32[l], b32.y32[l] = x32, y32
	b32.x64[l], b32.y64[l] = x64, y64
	b32.tag[l] = tag
	// Tag-indexed weight row; see pairBatch.add for why slot-indexed
	// rows would alias results published by immediately-resolved lanes.
	b32.wrow[l] = b32.wback[tag*b32.m : (tag+1)*b32.m : (tag+1)*b32.m]
	b32.wFresh[l] = false
	b32.dead[l] = false
	b32.skip[l] = false
	b32.iters[l] = 0
	b32.havePrev[l] = false
	if warm != nil {
		b32.warm[l] = *warm
	} else {
		b32.warm[l] = Fit{}
	}
	b32.attempted[l] = warm != nil && warm.Valid
	if ix != nil && iy != nil {
		b32.ix[l], b32.iy[l] = *ix, *iy
		b32.haveInit[l] = true
	} else {
		b32.haveInit[l] = false
	}
	b32.active = l + 1
	if b32.attempted[l] {
		b32.strict[l] = true
		b32.t1[l], b32.t2[l] = float32(warm.T1), float32(warm.T2)
		b32.v11[l], b32.v22[l], b32.v12[l] = float32(warm.V11), float32(warm.V22), float32(warm.V12)
		if !pd32(b32.v11[l], b32.v22[l], b32.v12[l]) {
			// The float64 fixed point is PD but its float32 truncation
			// is not (tiny scatter): cold-start in float32 instead.
			b32.startCold(l, nil)
		}
		return
	}
	b32.startCold(l, nil)
}

// pd32 reports whether a float32 scatter is usable (finite, positive
// definite).
func pd32(v11, v22, v12 float32) bool {
	det := v11*v22 - v12*v12
	return v11 > 0 && v22 > 0 && det > 0 && !math.IsInf(float64(det), 0)
}

// startCold (re)initialises lane l from the float64 cold initialisers
// truncated to float32. Exact-path semantics are preserved for the
// genuinely degenerate case (float64 scale == 0 → empty fit); a scale
// that only float32 cannot represent falls back to the exact path.
func (b32 *pairBatch32) startCold(l int, st *RobustStats) bool {
	b32.strict[l] = false
	b32.wFresh[l] = false
	b32.iters[l] = 0
	b32.havePrev[l] = false
	var i1, i2 ColdInit
	if b32.haveInit[l] {
		i1, i2 = b32.ix[l], b32.iy[l]
	} else {
		i1 = ColdInitOf(b32.parent.sbuf, b32.x64[l])
		i2 = ColdInitOf(b32.parent.sbuf, b32.y64[l])
	}
	if i1.Scale == 0 || i2.Scale == 0 {
		return b32.finalize(l, Fit{}, st)
	}
	s1, s2 := float32(i1.Scale), float32(i2.Scale)
	v11, v22 := s1*s1, s2*s2
	if !pd32(v11, v22, 0) {
		return b32.fallbackExact(l, st)
	}
	b32.t1[l], b32.t2[l] = float32(i1.Med), float32(i2.Med)
	b32.v11[l], b32.v22[l], b32.v12[l] = v11, v22, 0
	return true
}

// run sweeps the active set until every lane has resolved (polished
// float32 convergence or exact fallback).
func (b32 *pairBatch32) run(st *RobustStats) {
	// The parent's cold-init scratch must be sized even though the
	// parent batch itself is idle on this path.
	if len(b32.parent.sbuf) < b32.m {
		b32.parent.sbuf = make([]float64, b32.m)
	}
	if b32.parent.simd && b32.active >= simdMinLanes32 {
		b32.runSIMD(st)
		return
	}
	for b32.active > 0 {
		if st != nil {
			st.recordSweep(b32.active)
		}
		l := 0
		for l < b32.active {
			if b32.step(l, st) {
				l++
			}
		}
	}
}

// runSIMD is the f32 lane's phased sweep, the oct-wide analogue of
// pairBatch.runSIMD: scalar step bookkeeping per lane, one 8-wide
// kernel call per full oct for each weight pass, scalar fallback for
// the ragged tail, deferred compaction at sweep end. The f32 lane has
// no bit-identity contract, but the per-lane operation order still
// matches maronnaLocation32/maronnaScatter32; polish and the exact
// fallback stay scalar float64 as before.
func (b32 *pairBatch32) runSIMD(st *RobustStats) {
	prof := st != nil && simdProfiling.Load()
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}
	b32.pack()
	if prof {
		now := time.Now()
		st.SIMDPackNs += now.Sub(t0).Nanoseconds()
		t0 = now
	}
	b32.deferC = true
	m := b32.m
	for b32.active > 0 {
		if st != nil {
			st.recordSweep(b32.active)
		}
		n := b32.active
		for l := 0; l < n; l++ {
			b32.skip[l] = false
			b32.phaseInverse(l, st)
		}
		full := n / 8
		for q := 0; q < full; q++ {
			o := q * 8
			maronnaLocation8f(&b32.xt32[o*m], &b32.yt32[o*m], m,
				&b32.t1[o], &b32.t2[o], &b32.li11[o], &b32.li22[o], &b32.li12[o],
				b32.k, b32.k2, &b32.lsw[o], &b32.lsx[o], &b32.lsy[o])
		}
		for l := full * 8; l < n; l++ {
			if b32.skip[l] {
				continue
			}
			b32.lsw[l], b32.lsx[l], b32.lsy[l] = maronnaLocation32(b32.x32[l], b32.y32[l],
				b32.t1[l], b32.t2[l], b32.li11[l], b32.li22[l], b32.li12[l], b32.k, b32.k2)
		}
		for l := 0; l < n; l++ {
			if b32.skip[l] {
				continue
			}
			b32.phaseCenter(l, st)
		}
		for q := 0; q < full; q++ {
			o := q * 8
			maronnaScatter8f(&b32.xt32[o*m], &b32.yt32[o*m], m,
				&b32.lt1n[o], &b32.lt2n[o], &b32.li11[o], &b32.li22[o], &b32.li12[o],
				b32.k2, &b32.ln11[o], &b32.ln22[o], &b32.ln12[o])
		}
		for l := full * 8; l < n; l++ {
			if b32.skip[l] {
				continue
			}
			b32.ln11[l], b32.ln22[l], b32.ln12[l] = maronnaScatter32(b32.x32[l], b32.y32[l],
				b32.lt1n[l], b32.lt2n[l], b32.li11[l], b32.li22[l], b32.li12[l], b32.k2)
		}
		for l := 0; l < n; l++ {
			if b32.skip[l] {
				continue
			}
			b32.phaseAdvance(l, st)
		}
		b32.compactDead()
	}
	b32.deferC = false
	b32.packed = false
	if prof {
		st.SIMDRunNs += time.Since(t0).Nanoseconds()
	}
}

// pack transposes the active lanes' float32 windows into the
// oct-blocked tiles.
func (b32 *pairBatch32) pack() {
	m := b32.m
	for l := 0; l < b32.active; l++ {
		base := (l &^ 7) * m
		s := l & 7
		x, y := b32.x32[l][:m], b32.y32[l][:m]
		for i := 0; i < m; i++ {
			b32.xt32[base+i*8+s] = x[i]
			b32.yt32[base+i*8+s] = y[i]
		}
		b32.dead[l] = false
		b32.skip[l] = false
	}
	b32.packed = true
}

// phaseInverse is step()'s opening for the phased sweep.
func (b32 *pairBatch32) phaseInverse(l int, st *RobustStats) {
	v11, v22, v12 := b32.v11[l], b32.v22[l], b32.v12[l]
	det := v11*v22 - v12*v12
	if det <= 0 || v11 <= 0 || v22 <= 0 {
		if b32.strict[l] {
			b32.startCold(l, st)
		} else {
			b32.fallbackExact(l, st)
		}
		b32.skip[l] = true
		return
	}
	b32.iters[l]++
	b32.li11[l] = v22 / det
	b32.li22[l] = v11 / det
	b32.li12[l] = -v12 / det
}

// phaseCenter is step()'s middle for the phased sweep.
func (b32 *pairBatch32) phaseCenter(l int, st *RobustStats) {
	sw := b32.lsw[l]
	if sw == 0 {
		if b32.strict[l] {
			b32.startCold(l, st)
		} else {
			b32.fallbackExact(l, st)
		}
		b32.skip[l] = true
		return
	}
	b32.lt1n[l], b32.lt2n[l] = b32.lsx[l]/sw, b32.lsy[l]/sw
}

// phaseAdvance is step()'s tail for the phased sweep: normalise,
// converge (into the float64 polish), Anderson, budget.
func (b32 *pairBatch32) phaseAdvance(l int, st *RobustStats) {
	v11, v22, v12 := b32.v11[l], b32.v22[l], b32.v12[l]
	t1, t2 := b32.t1[l], b32.t2[l]
	t1n, t2n := b32.lt1n[l], b32.lt2n[l]
	n11, n22, n12 := b32.ln11[l], b32.ln22[l], b32.ln12[l]
	fn := float32(len(b32.x32[l]))
	n11 /= fn
	n22 /= fn
	n12 /= fn

	den := abs32(v11) + abs32(v22) + abs32(v12)
	num := abs32(n11-v11) + abs32(n22-v22) + abs32(n12-v12)
	g := [5]float32{t1n, t2n, n11, n22, n12}
	f := [5]float32{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
	t1, t2 = t1n, t2n
	v11, v22, v12 = n11, n22, n12
	if den > 0 && num/den < b32.tol {
		b32.t1[l], b32.t2[l] = t1, t2
		b32.v11[l], b32.v22[l], b32.v12[l] = v11, v22, v12
		b32.polishLane(l, st)
		b32.skip[l] = true
		return
	}

	if b32.havePrev[l] {
		pf := &b32.pf[l]
		var fd, dd float32
		for c := 0; c < 5; c++ {
			d := f[c] - pf[c]
			fd += f[c] * d
			dd += d * d
		}
		if dd > 0 {
			if theta := fd / dd; abs32(theta) < 16 {
				pg := &b32.pg[l]
				a1 := t1n - theta*(t1n-pg[0])
				a2 := t2n - theta*(t2n-pg[1])
				a11 := n11 - theta*(n11-pg[2])
				a22 := n22 - theta*(n22-pg[3])
				a12 := n12 - theta*(n12-pg[4])
				if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
					t1, t2 = a1, a2
					v11, v22, v12 = a11, a22, a12
				}
			}
		}
	}
	b32.pg[l] = g
	b32.pf[l] = f
	b32.havePrev[l] = true
	b32.t1[l], b32.t2[l] = t1, t2
	b32.v11[l], b32.v22[l], b32.v12[l] = v11, v22, v12

	if b32.iters[l] >= b32.maxIter {
		if b32.strict[l] {
			b32.startCold(l, st)
		} else {
			b32.fallbackExact(l, st)
		}
		b32.skip[l] = true
	}
}

// compactDead swaps lanes finalized during the sweep out of the
// active set.
func (b32 *pairBatch32) compactDead() {
	l := 0
	for l < b32.active {
		if !b32.dead[l] {
			l++
			continue
		}
		last := b32.active - 1
		if l != last {
			b32.swapLanes(l, last)
		}
		b32.dead[last] = false
		b32.active = last
	}
}

// step advances lane l by one single-precision fixed-point iteration.
func (b32 *pairBatch32) step(l int, st *RobustStats) bool {
	v11, v22, v12 := b32.v11[l], b32.v22[l], b32.v12[l]
	det := v11*v22 - v12*v12
	if det <= 0 || v11 <= 0 || v22 <= 0 {
		if b32.strict[l] {
			return b32.startCold(l, st)
		}
		return b32.fallbackExact(l, st)
	}
	b32.iters[l]++
	i11 := v22 / det
	i22 := v11 / det
	i12 := -v12 / det

	x, y := b32.x32[l], b32.y32[l]
	t1, t2 := b32.t1[l], b32.t2[l]
	sw, sx, sy := maronnaLocation32(x, y, t1, t2, i11, i22, i12, b32.k, b32.k2)
	if sw == 0 {
		if b32.strict[l] {
			return b32.startCold(l, st)
		}
		return b32.fallbackExact(l, st)
	}
	t1n, t2n := sx/sw, sy/sw

	n11, n22, n12 := maronnaScatter32(x, y, t1n, t2n, i11, i22, i12, b32.k2)
	fn := float32(len(x))
	n11 /= fn
	n22 /= fn
	n12 /= fn

	den := abs32(v11) + abs32(v22) + abs32(v12)
	num := abs32(n11-v11) + abs32(n22-v22) + abs32(n12-v12)
	g := [5]float32{t1n, t2n, n11, n22, n12}
	f := [5]float32{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
	t1, t2 = t1n, t2n
	v11, v22, v12 = n11, n22, n12
	if den > 0 && num/den < b32.tol {
		b32.t1[l], b32.t2[l] = t1, t2
		b32.v11[l], b32.v22[l], b32.v12[l] = v11, v22, v12
		return b32.polishLane(l, st)
	}

	if b32.havePrev[l] {
		pf := &b32.pf[l]
		var fd, dd float32
		for c := 0; c < 5; c++ {
			d := f[c] - pf[c]
			fd += f[c] * d
			dd += d * d
		}
		if dd > 0 {
			if theta := fd / dd; abs32(theta) < 16 {
				pg := &b32.pg[l]
				a1 := t1n - theta*(t1n-pg[0])
				a2 := t2n - theta*(t2n-pg[1])
				a11 := n11 - theta*(n11-pg[2])
				a22 := n22 - theta*(n22-pg[3])
				a12 := n12 - theta*(n12-pg[4])
				if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
					t1, t2 = a1, a2
					v11, v22, v12 = a11, a22, a12
				}
			}
		}
	}
	b32.pg[l] = g
	b32.pf[l] = f
	b32.havePrev[l] = true
	b32.t1[l], b32.t2[l] = t1, t2
	b32.v11[l], b32.v22[l], b32.v12[l] = v11, v22, v12

	if b32.iters[l] >= b32.maxIter {
		if b32.strict[l] {
			return b32.startCold(l, st)
		}
		return b32.fallbackExact(l, st)
	}
	return true
}

// polishLane promotes lane l's converged float32 state to float64 and
// runs the fixed exact polish iterations, writing the lane's float64
// weight row. Any degeneracy mid-polish abandons to the exact path.
func (b32 *pairBatch32) polishLane(l int, st *RobustStats) bool {
	x, y, w := b32.x64[l], b32.y64[l], b32.wrow[l]
	t1, t2 := float64(b32.t1[l]), float64(b32.t2[l])
	v11, v22, v12 := float64(b32.v11[l]), float64(b32.v22[l]), float64(b32.v12[l])
	k, k2, tol := b32.parent.k, b32.parent.k2, b32.parent.tol
	iters := 0
	for p := 0; p < b32.polish; p++ {
		det := v11*v22 - v12*v12
		if det <= 0 || v11 <= 0 || v22 <= 0 {
			return b32.fallbackExact(l, st)
		}
		iters++
		i11 := v22 / det
		i22 := v11 / det
		i12 := -v12 / det
		sw, sx, sy := polishLocation(x, y, t1, t2, i11, i22, i12, k, k2)
		if sw == 0 {
			return b32.fallbackExact(l, st)
		}
		t1n, t2n := sx/sw, sy/sw
		n11, n22, n12 := polishScatter(x, y, w, t1n, t2n, i11, i22, i12, k2)
		fn := float64(len(x))
		n11 /= fn
		n22 /= fn
		n12 /= fn
		den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
		num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
		t1, t2 = t1n, t2n
		v11, v22, v12 = n11, n22, n12
		if den > 0 && num/den < tol {
			break
		}
	}
	if v11 <= 0 || v22 <= 0 || v11*v22-v12*v12 <= 0 {
		return b32.fallbackExact(l, st)
	}
	b32.wFresh[l] = true
	f := Fit{
		T1: t1, T2: t2, V11: v11, V22: v22, V12: v12,
		Iters: b32.iters[l] + iters, Converged: true, Valid: true,
		Seeded: b32.strict[l],
	}
	f.Rho = clampCorr(v12 / math.Sqrt(v11*v22))
	return b32.finalize(l, f, st)
}

// fallbackExact resolves lane l through the exact float64 per-pair
// path with the lane's original warm/cold inputs.
func (b32 *pairBatch32) fallbackExact(l int, st *RobustStats) bool {
	var ix, iy *ColdInit
	if b32.haveInit[l] {
		ix, iy = &b32.ix[l], &b32.iy[l]
	}
	f, sc := b32.est.FitScratchShared(b32.x64[l], b32.y64[l], b32.sc, &b32.warm[l], ix, iy)
	b32.sc = sc
	if len(sc.Weights()) == len(b32.wrow[l]) {
		copy(b32.wrow[l], sc.Weights())
		b32.wFresh[l] = true
	}
	return b32.finalize(l, f, st)
}

// finalize publishes lane l's result through the parent's tag-indexed
// slots and compacts the lane out of the active set.
func (b32 *pairBatch32) finalize(l int, f Fit, st *RobustStats) bool {
	if !b32.wFresh[l] {
		w := b32.wrow[l]
		for i := range w {
			w[i] = 1
		}
	}
	tag := b32.tag[l]
	b32.parent.fits[tag] = f
	b32.parent.wOut[tag] = b32.wrow[l]
	if st != nil {
		st.record(f, b32.attempted[l])
	}
	if b32.deferC {
		b32.dead[l] = true
		b32.skip[l] = true
		return false
	}
	last := b32.active - 1
	if l != last {
		b32.swapLanes(l, last)
	}
	b32.active = last
	return false
}

func (b32 *pairBatch32) swapLanes(i, j int) {
	b32.x32[i], b32.x32[j] = b32.x32[j], b32.x32[i]
	b32.y32[i], b32.y32[j] = b32.y32[j], b32.y32[i]
	b32.x64[i], b32.x64[j] = b32.x64[j], b32.x64[i]
	b32.y64[i], b32.y64[j] = b32.y64[j], b32.y64[i]
	b32.wrow[i], b32.wrow[j] = b32.wrow[j], b32.wrow[i]
	b32.t1[i], b32.t1[j] = b32.t1[j], b32.t1[i]
	b32.t2[i], b32.t2[j] = b32.t2[j], b32.t2[i]
	b32.v11[i], b32.v11[j] = b32.v11[j], b32.v11[i]
	b32.v22[i], b32.v22[j] = b32.v22[j], b32.v22[i]
	b32.v12[i], b32.v12[j] = b32.v12[j], b32.v12[i]
	b32.pg[i], b32.pg[j] = b32.pg[j], b32.pg[i]
	b32.pf[i], b32.pf[j] = b32.pf[j], b32.pf[i]
	b32.havePrev[i], b32.havePrev[j] = b32.havePrev[j], b32.havePrev[i]
	b32.strict[i], b32.strict[j] = b32.strict[j], b32.strict[i]
	b32.attempted[i], b32.attempted[j] = b32.attempted[j], b32.attempted[i]
	b32.wFresh[i], b32.wFresh[j] = b32.wFresh[j], b32.wFresh[i]
	b32.iters[i], b32.iters[j] = b32.iters[j], b32.iters[i]
	b32.tag[i], b32.tag[j] = b32.tag[j], b32.tag[i]
	b32.ix[i], b32.ix[j] = b32.ix[j], b32.ix[i]
	b32.iy[i], b32.iy[j] = b32.iy[j], b32.iy[i]
	b32.haveInit[i], b32.haveInit[j] = b32.haveInit[j], b32.haveInit[i]
	b32.warm[i], b32.warm[j] = b32.warm[j], b32.warm[i]
	b32.dead[i], b32.dead[j] = b32.dead[j], b32.dead[i]
	b32.skip[i], b32.skip[j] = b32.skip[j], b32.skip[i]
	if b32.packed {
		b32.swapCols(i, j)
	}
}

// swapCols exchanges the packed tile columns of lane positions i and
// j (no weight tile on the f32 side).
func (b32 *pairBatch32) swapCols(i, j int) {
	m := b32.m
	bi := (i&^7)*m + i&7
	bj := (j&^7)*m + j&7
	for t := 0; t < m; t++ {
		oi, oj := bi+t*8, bj+t*8
		b32.xt32[oi], b32.xt32[oj] = b32.xt32[oj], b32.xt32[oi]
		b32.yt32[oi], b32.yt32[oj] = b32.yt32[oj], b32.yt32[oi]
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// maronnaLocation32 is the location pass in single precision; the
// float32(math.Sqrt(float64(·))) form compiles to the hardware
// single-precision square root. The pass is kept in the reference's
// serial shape: it is throughput-bound (~13 µops per observation), so
// unrolled multi-accumulator variants measure no faster and spill
// registers; see DESIGN.md §8.
func maronnaLocation32(x, y []float32, t1, t2, i11, i22, i12, k, k2 float32) (sw, sx, sy float32) {
	y = y[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := float32(1)
		if d2 > k2 {
			w = k / float32(math.Sqrt(float64(d2)))
		}
		sw += w
		sx += w * x[i]
		sy += w * y[i]
	}
	return sw, sx, sy
}

// maronnaScatter32 is the scatter pass in single precision. Unlike the
// float64 pass it does not record per-observation weights: the weights
// that matter (Combined's) are produced by the float64 polish.
func maronnaScatter32(x, y []float32, t1, t2, i11, i22, i12, k2 float32) (n11, n22, n12 float32) {
	y = y[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := float32(1)
		if d2 > k2 {
			w = k2 / d2
		}
		n11 += w * dx * dx
		n22 += w * dy * dy
		n12 += w * dx * dy
	}
	return n11, n22, n12
}

// polishLocation and polishScatter are the float64 passes of the
// post-convergence polish. They share the reference arithmetic shape;
// as part of the approximate lane they have no bit-identity contract,
// but reassociated variants measured no faster (the passes are
// µop-throughput-bound), so the serial shape stays. polishScatter
// records the per-observation weights the Combined treatment consumes.
func polishLocation(x, y []float64, t1, t2, i11, i22, i12, k, k2 float64) (sw, sx, sy float64) {
	return maronnaLocation(x, y, t1, t2, i11, i22, i12, k, k2)
}

func polishScatter(x, y, wout []float64, t1, t2, i11, i22, i12, k2 float64) (n11, n22, n12 float64) {
	return maronnaScatter(x, y, wout, t1, t2, i11, i22, i12, k2)
}
