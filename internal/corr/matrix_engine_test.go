package corr

import (
	"math/rand"
	"runtime"
	"testing"

	"marketminer/internal/taq"
)

// TestMatrixEngineMatchesReference is the tentpole property test: the
// tiled, shared-moment, work-stealing matrix engine must produce
// byte-identical output to the per-pair reference engine for every
// correlation type, worker count and tile size — including the robust
// warm-start statistics, which the sweep orchestrator surfaces.
func TestMatrixEngineMatchesReference(t *testing.T) {
	rets := marketReturns(t, 7, 20080311)
	const m = 60
	typeSets := [][]Type{
		{Pearson},
		{Maronna},
		{Combined},
		{Pearson, Maronna, Combined},
	}
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	tileSizes := []int{1, 7, 64, 1 << 30}

	for _, types := range typeSets {
		ref, err := ComputeSeriesMultiReference(EngineConfig{M: m, Workers: 1}, types, rets)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts {
			for _, tile := range tileSizes {
				got, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: workers, TileSize: tile}, types, rets)
				if err != nil {
					t.Fatal(err)
				}
				for oi := range ref {
					for k := range ref[oi].Corr {
						for w := range ref[oi].Corr[k] {
							if got[oi].Corr[k][w] != ref[oi].Corr[k][w] {
								t.Fatalf("types=%v workers=%d tile=%d: series %v pair %d window %d: matrix %v reference %v",
									types, workers, tile, ref[oi].Type, k, w, got[oi].Corr[k][w], ref[oi].Corr[k][w])
							}
						}
					}
					rs, gs := ref[oi].Robust, got[oi].Robust
					if (rs == nil) != (gs == nil) {
						t.Fatalf("types=%v workers=%d tile=%d: robust stats presence differs", types, workers, tile)
					}
					if rs == nil {
						continue
					}
					if gs.Windows != rs.Windows || gs.WarmHits != rs.WarmHits ||
						gs.ColdStarts != rs.ColdStarts || gs.Fallbacks != rs.Fallbacks {
						t.Fatalf("types=%v workers=%d tile=%d: robust stats differ: matrix %+v reference %+v",
							types, workers, tile, *gs, *rs)
					}
					for i := range rs.IterHist {
						if gs.IterHist[i] != rs.IterHist[i] {
							t.Fatalf("types=%v workers=%d tile=%d: IterHist[%d] = %d, reference %d",
								types, workers, tile, i, gs.IterHist[i], rs.IterHist[i])
						}
					}
				}
			}
		}
	}
}

// TestMatrixEnginePairSubset pins the sweep orchestrator's unit of
// work: a pair-block subset computed by the matrix engine must match
// the same pairs sliced out of a full-universe reference run.
func TestMatrixEnginePairSubset(t *testing.T) {
	rets := marketReturns(t, 6, 41)
	const m = 50
	subset := []int{taq.PairID(0, 1, 6), taq.PairID(2, 5, 6), taq.PairID(3, 4, 6), taq.PairID(0, 5, 6)}
	full, err := ComputeSeriesMultiReference(EngineConfig{M: m}, []Type{Pearson, Maronna, Combined}, rets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: 2, TileSize: 4, Pairs: subset}, []Type{Pearson, Maronna, Combined}, rets)
	if err != nil {
		t.Fatal(err)
	}
	for oi := range got {
		for _, pid := range subset {
			want := full[oi].PairSeries(pid)
			have := got[oi].PairSeries(pid)
			if have == nil {
				t.Fatalf("series %v: pair %d missing", got[oi].Type, pid)
			}
			for w := range want {
				if have[w] != want[w] {
					t.Fatalf("series %v pair %d window %d: subset %v full %v",
						got[oi].Type, pid, w, have[w], want[w])
				}
			}
		}
	}
}

// TestBuildTiles checks the tiling invariants: every requested pair
// lands in exactly one tile, and tile population respects the
// stock-block bound.
func TestBuildTiles(t *testing.T) {
	const n = 13
	allPairs := taq.AllPairs(n)
	pairs := make([]int, len(allPairs))
	for i := range pairs {
		pairs[i] = i
	}
	for _, tile := range []int{1, 7, 64, 1 << 30} {
		tiles := buildTiles(pairs, allPairs, tile)
		seen := make([]bool, len(pairs))
		dim := tileDim(tile)
		for _, tl := range tiles {
			if len(tl) == 0 {
				t.Fatalf("tile=%d: empty tile", tile)
			}
			if len(tl) > dim*dim {
				t.Fatalf("tile=%d: tile holds %d pairs, bound %d", tile, len(tl), dim*dim)
			}
			for _, k := range tl {
				if seen[k] {
					t.Fatalf("tile=%d: pair index %d appears twice", tile, k)
				}
				seen[k] = true
			}
		}
		for k, s := range seen {
			if !s {
				t.Fatalf("tile=%d: pair index %d missing", tile, k)
			}
		}
	}
}

// TestStockMomentsMatchReferenceRolling pins the bit-identity argument
// at its root: the hoisted per-stock running sums must equal the sums
// the per-pair rolling Pearson would have derived at every step, which
// follows from using the same re-anchored recurrence.
func TestStockMomentsMatchReferenceRolling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const m, T = 100, 700 // spans several re-anchor blocks
	x := make([]float64, T)
	for i := range x {
		x[i] = 1e-3*rng.NormFloat64() + 0.01
	}
	var mom stockMoments
	computeStockMoments(x, m, &mom)

	// Reference recurrence, transcribed from rollingPearson.
	steps := T - m + 1
	var sx, sxx float64
	for base := 0; base < steps; base += pearsonReanchorEvery {
		sx, sxx = 0, 0
		for i := base; i < base+m; i++ {
			sx += x[i]
			sxx += x[i] * x[i]
		}
		if mom.sum[base] != sx || mom.sumSq[base] != sxx {
			t.Fatalf("anchor %d: moments (%v,%v) want (%v,%v)", base, mom.sum[base], mom.sumSq[base], sx, sxx)
		}
		end := base + pearsonReanchorEvery
		if end > steps {
			end = steps
		}
		for tt := base + 1; tt < end; tt++ {
			ox, nx := x[tt-1], x[tt+m-1]
			sx += nx - ox
			sxx += nx*nx - ox*ox
			if mom.sum[tt] != sx || mom.sumSq[tt] != sxx {
				t.Fatalf("step %d: moments (%v,%v) want (%v,%v)", tt, mom.sum[tt], mom.sumSq[tt], sx, sxx)
			}
		}
	}
}

// TestColdInitSharedMatchesInline asserts the shared per-stock cold
// initialiser path reaches the same fit as the classic inline cold
// start, bitwise.
func TestColdInitSharedMatchesInline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m = 80
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		f := rng.NormFloat64()
		x[i] = f + 0.4*rng.NormFloat64()
		y[i] = f + 0.4*rng.NormFloat64()
	}
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	inline, sc := est.FitScratch(x, y, nil, nil)
	buf := make([]float64, m)
	ix := ColdInitOf(buf, x)
	iy := ColdInitOf(buf, y)
	shared, _ := est.FitScratchShared(x, y, sc, nil, &ix, &iy)
	if inline != shared {
		t.Fatalf("shared cold init fit %+v differs from inline %+v", shared, inline)
	}

	// Degenerate series: zero scale must yield the empty fit both ways.
	flat := make([]float64, m)
	izero := ColdInitOf(buf, flat)
	if izero.Scale != 0 {
		t.Fatalf("constant series scale = %v, want 0", izero.Scale)
	}
	df, _ := est.FitScratchShared(flat, y, sc, nil, &izero, &iy)
	if df != (Fit{}) {
		t.Fatalf("degenerate shared fit = %+v, want zero", df)
	}
}

// TestTileRunSteadyStateZeroAllocs extends the allocation-regression
// gate to the tiled path: once the worker scratch is sized, executing
// a whole tile (both treatments plus Pearson, all window steps) must
// not allocate.
func TestTileRunSteadyStateZeroAllocs(t *testing.T) {
	rets := marketReturns(t, 5, 12)
	const m = 100
	cfg := EngineConfig{M: m, TileSize: 16}
	pairs, outs, err := prepareSeriesRequest(cfg, []Type{Pearson, Maronna, Combined}, rets)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rets)
	allPairs := taq.AllPairs(n)
	moments := make([]stockMoments, n)
	inits := make([]ColdInit, n)
	buf := make([]float64, m)
	for i := range rets {
		computeStockMoments(rets[i], m, &moments[i])
		inits[i] = ColdInitOf(buf, rets[i][:m])
	}
	tiles := buildTiles(pairs, allPairs, cfg.TileSize)
	est := NewMaronnaEstimator(cfg.maronna())
	st := &RobustStats{IterHist: make([]int, cfg.maronna().MaxIter+1)}
	tr := newTileRun(&cfg, tiles[0], pairs, allPairs, rets, nil,
		outs[0].Corr, outs[1].Corr, outs[2].Corr, moments, inits, est, nil, st)

	tr.run() // size the scratch
	allocs := testing.AllocsPerRun(3, func() { tr.run() })
	if allocs != 0 {
		t.Fatalf("steady-state tile run allocates %.1f times, want 0", allocs)
	}
}
