package corr

import (
	"math"
	"time"
)

// The batched Maronna kernel. The per-pair kernel (MaronnaEstimator's
// iterate/FitScratchShared) advances one pair's fixed point at a time:
// every window is a self-contained call chain whose state lives in
// locals and whose control flow (warm attempt → strict failure → cold
// restart) is expressed as early returns. That shape is convenient but
// hostile to a large pair triangle: the call overhead, the per-call
// weight reset and the one-lane-at-a-time traversal leave the CPU no
// way to overlap independent pairs.
//
// pairBatch lays the same iteration out as struct-of-arrays lanes: one
// lane per pair, the per-lane scalars (location, scatter, Anderson
// history, iteration budget, warm/cold mode) in parallel float64
// slices, and the per-observation weight rows carved out of one flat
// backing array. A sweep applies exactly one fixed-point iteration to
// every active lane; lanes that finish (converged, collapsed, or out
// of budget) drop out via swap-to-end compaction so late-converging
// pairs do not serialize the batch.
//
// Bit-identity contract: a lane executes the reference per-pair
// arithmetic — the same expressions, in the same order, on the same
// values — as MaronnaEstimator.FitScratchShared. Interleaving lanes is
// bit-neutral because no lane reads another lane's state; the only
// behavioural difference is scheduling. Two deliberate non-arithmetic
// deviations, both value-preserving:
//
//   - the weight row is not eagerly reset to all-ones per window; it
//     is filled with ones at finalization only when the accepted run
//     performed no scatter pass (degenerate exits), because any scatter
//     pass overwrites every entry anyway;
//   - a strict (warm) failure restarts the lane cold in place instead
//     of unwinding a call stack.
//
// TestMatrixEngineMatchesReference and the degenerate-batch tests are
// the gate: per-pair results must be bit-identical to running each
// pair alone through the reference.
type pairBatch struct {
	k, k2   float64
	tol     float64
	maxIter int

	m       int // window length all lanes share
	laneCap int
	active  int

	// Per-lane window views and weight rows (swapped with their lane).
	xw, yw [][]float64
	wrow   [][]float64
	wback  []float64 // flat backing for the weight rows

	// Per-lane iteration state, struct-of-arrays.
	t1, t2        []float64
	v11, v22, v12 []float64
	pg, pf        [][5]float64 // Anderson(1) history
	havePrev      []bool
	strict        []bool // current run is the warm strict attempt
	attempted     []bool // a warm attempt was made for this window
	wFresh        []bool // weight row written by the accepted run
	iters         []int
	tag           []int // caller's lane identity (stable across compaction)

	// Shared cold-start initialisers captured at add time (used again
	// if a strict run fails and the lane restarts cold).
	ix, iy   []ColdInit
	haveInit []bool

	// Results indexed by tag, valid after run() until the next begin().
	fits []Fit
	wOut [][]float64 // final weight rows, aliases into wback

	sbuf []float64 // median/MAD selection scratch for inline cold inits

	f32lane *pairBatch32 // lazily-built float32 iteration lane

	// SIMD lane-major state. When simd is set (AVX2 available and not
	// disabled for this batch) run() executes sweeps in phases: the
	// scalar bookkeeping of step() per lane, then one vector kernel
	// call per full quad of four lanes over the packed tiles. Element
	// i of the lane at position l lives at xt[(l/4)*4*m + i*4 + l%4]
	// (quad-blocked obs-major), so a quad's observation i is one
	// contiguous 32-byte vector load. Lanes keep their packed columns
	// as compaction swaps them (swapLanes swaps columns while packed),
	// and compaction itself is deferred to sweep end (dead marks) so a
	// sweep steps exactly its start-of-sweep active set — the same
	// schedule as the scalar path, which recordSweep telemetry and the
	// bit-identity argument both rely on.
	simd   bool // vector backend enabled for this batch
	packed bool // tiles currently hold the active lanes' windows
	deferC bool // inside a phased sweep: finalize defers compaction

	xt, yt, wt []float64 // quad-blocked obs-major tiles (x, y, weights)
	wVec       []bool    // lane's freshest weights live in wt, not wrow
	dead       []bool    // lane finalized mid-sweep, compacted at sweep end
	skip       []bool    // lane resolved/restarted this sweep: no vector consume

	// Per-sweep per-lane scratch carrying values between phases
	// (inverse scatter, location sums, new center, scatter sums).
	li11, li22, li12 []float64
	lsw, lsx, lsy    []float64
	lt1n, lt2n       []float64
	ln11, ln22, ln12 []float64
}

// simdMinLanes is the smallest active set runSIMD will pack: below one
// full quad every lane would take the scalar fallback anyway.
const simdMinLanes = 4

// newPairBatch builds a batch kernel for the given (validated)
// estimator configuration. The batch grows its lane capacity on
// demand and is reused across tiles and windows by one worker. simd
// requests the vector backend; it takes effect only when the
// process-wide dispatch (CPUID, noasm, MM_NOSIMD, SetSIMDMode) allows
// it, so callers just pass !cfg.DisableSIMD.
func newPairBatch(cfg MaronnaConfig, simd bool) *pairBatch {
	e := NewMaronnaEstimator(cfg) // reuse the validation defaults
	c := e.Config()
	return &pairBatch{
		k: c.K, k2: c.K * c.K, tol: c.Tol, maxIter: c.MaxIter,
		simd: simd && simdActive(),
	}
}

// begin prepares the batch for windows of length m with up to lanes
// concurrent lanes. Calling it with previously-seen sizes performs no
// allocation; results of the previous run remain readable until the
// first add.
func (b *pairBatch) begin(m, lanes int) {
	if m != b.m || lanes > b.laneCap {
		b.grow(m, lanes)
	}
	b.active = 0
}

func (b *pairBatch) grow(m, lanes int) {
	if lanes < b.laneCap {
		lanes = b.laneCap
	}
	b.m = m
	b.laneCap = lanes
	b.xw = make([][]float64, lanes)
	b.yw = make([][]float64, lanes)
	b.wrow = make([][]float64, lanes)
	b.wback = make([]float64, lanes*m)
	b.t1 = make([]float64, lanes)
	b.t2 = make([]float64, lanes)
	b.v11 = make([]float64, lanes)
	b.v22 = make([]float64, lanes)
	b.v12 = make([]float64, lanes)
	b.pg = make([][5]float64, lanes)
	b.pf = make([][5]float64, lanes)
	b.havePrev = make([]bool, lanes)
	b.strict = make([]bool, lanes)
	b.attempted = make([]bool, lanes)
	b.wFresh = make([]bool, lanes)
	b.iters = make([]int, lanes)
	b.tag = make([]int, lanes)
	b.ix = make([]ColdInit, lanes)
	b.iy = make([]ColdInit, lanes)
	b.haveInit = make([]bool, lanes)
	b.fits = make([]Fit, lanes)
	b.wOut = make([][]float64, lanes)
	b.sbuf = make([]float64, m)
	b.wVec = make([]bool, lanes)
	b.dead = make([]bool, lanes)
	b.skip = make([]bool, lanes)
	if b.simd {
		tile := (lanes + 3) / 4 * 4 * m
		b.xt = make([]float64, tile)
		b.yt = make([]float64, tile)
		b.wt = make([]float64, tile)
		b.li11 = make([]float64, lanes)
		b.li22 = make([]float64, lanes)
		b.li12 = make([]float64, lanes)
		b.lsw = make([]float64, lanes)
		b.lsx = make([]float64, lanes)
		b.lsy = make([]float64, lanes)
		b.lt1n = make([]float64, lanes)
		b.lt2n = make([]float64, lanes)
		b.ln11 = make([]float64, lanes)
		b.ln22 = make([]float64, lanes)
		b.ln12 = make([]float64, lanes)
	}
}

// add enqueues one window as a lane. x and y must have length m (the
// begin length); tag identifies the lane to the caller (0 ≤ tag <
// lanes) and indexes the fits/wOut result slots. warm, ix, iy carry
// the same meaning as in FitScratchShared. Lanes that finish without
// iterating (degenerate cold inits) resolve immediately.
func (b *pairBatch) add(x, y []float64, warm *Fit, ix, iy *ColdInit, tag int, st *RobustStats) {
	l := b.active
	b.xw[l], b.yw[l] = x, y
	b.tag[l] = tag
	// The weight row is carved out by tag, not by lane slot: a lane
	// that resolves during add frees its slot for the next add, and a
	// slot-indexed row would let that later lane overwrite the weights
	// already published under the finished lane's tag.
	b.wrow[l] = b.wback[tag*b.m : (tag+1)*b.m : (tag+1)*b.m]
	b.wFresh[l] = false
	b.wVec[l] = false
	b.dead[l] = false
	b.skip[l] = false
	b.iters[l] = 0
	b.havePrev[l] = false
	b.attempted[l] = warm != nil && warm.Valid
	if ix != nil && iy != nil {
		b.ix[l], b.iy[l] = *ix, *iy
		b.haveInit[l] = true
	} else {
		b.haveInit[l] = false
	}
	b.active = l + 1
	if b.attempted[l] {
		// Strict warm attempt from the previous window's fixed point.
		b.strict[l] = true
		b.t1[l], b.t2[l] = warm.T1, warm.T2
		b.v11[l], b.v22[l], b.v12[l] = warm.V11, warm.V22, warm.V12
		return
	}
	b.startCold(l, st)
}

// startCold (re)initialises lane l from the robust univariate cold
// start, finalizing immediately when a series is genuinely constant
// (no correlation defined — the reference's empty Fit). It reports
// whether the lane is still active.
func (b *pairBatch) startCold(l int, st *RobustStats) bool {
	b.strict[l] = false
	b.wFresh[l] = false
	b.iters[l] = 0
	b.havePrev[l] = false
	var i1, i2 ColdInit
	if b.haveInit[l] {
		i1, i2 = b.ix[l], b.iy[l]
	} else {
		i1 = ColdInitOf(b.sbuf, b.xw[l])
		i2 = ColdInitOf(b.sbuf, b.yw[l])
	}
	if i1.Scale == 0 || i2.Scale == 0 {
		return b.finalize(l, Fit{}, st)
	}
	b.t1[l], b.t2[l] = i1.Med, i2.Med
	b.v11[l], b.v22[l], b.v12[l] = i1.Scale*i1.Scale, i2.Scale*i2.Scale, 0
	return true
}

// run sweeps the active set until every lane has finished. One sweep
// applies one fixed-point iteration to each active lane; st (when
// non-nil) records the active-set telemetry that keeps the "where do
// the cycles go" profile measurable after batching. The vector and
// scalar paths produce bit-identical fits, weights and telemetry.
func (b *pairBatch) run(st *RobustStats) {
	if b.simd && b.active >= simdMinLanes {
		b.runSIMD(st)
		return
	}
	for b.active > 0 {
		if st != nil {
			st.recordSweep(b.active)
		}
		l := 0
		for l < b.active {
			if b.step(l, st) {
				l++
			}
		}
	}
}

// runSIMD is run with each sweep split into phases so the two weight
// passes execute as lane-major vector kernels: per sweep, (1) the
// scalar inverse-scatter bookkeeping of step() for every lane, (2) the
// location pass — one maronnaLocation4 call per full quad, scalar
// maronnaLocation for the ragged tail — (3) the scalar sw==0 check and
// center update, (4) the scatter pass likewise, (5) the scalar
// convergence/Anderson/budget tail of step(). A lane resolved or
// cold-restarted by a scalar phase sets skip and sits out the rest of
// the sweep (exactly the scalar schedule, where step() returns after
// the same decision); vector kernels still process skipped lanes'
// slots — their packed data is valid, no lane reads another's slot,
// and phases 3/5 discard the results — so quads never need masking.
// Finalized lanes compact at sweep end (finalize defers while deferC),
// preserving "one sweep steps the start-of-sweep active set".
func (b *pairBatch) runSIMD(st *RobustStats) {
	prof := st != nil && simdProfiling.Load()
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}
	b.pack()
	if prof {
		now := time.Now()
		st.SIMDPackNs += now.Sub(t0).Nanoseconds()
		t0 = now
	}
	b.deferC = true
	m := b.m
	for b.active > 0 {
		if st != nil {
			st.recordSweep(b.active)
		}
		n := b.active
		for l := 0; l < n; l++ {
			b.skip[l] = false
			b.phaseInverse(l, st)
		}
		full := n / 4
		for q := 0; q < full; q++ {
			o := q * 4
			maronnaLocation4(&b.xt[o*m], &b.yt[o*m], m,
				&b.t1[o], &b.t2[o], &b.li11[o], &b.li22[o], &b.li12[o],
				b.k, b.k2, &b.lsw[o], &b.lsx[o], &b.lsy[o])
		}
		for l := full * 4; l < n; l++ {
			if b.skip[l] {
				continue
			}
			b.lsw[l], b.lsx[l], b.lsy[l] = maronnaLocation(b.xw[l], b.yw[l],
				b.t1[l], b.t2[l], b.li11[l], b.li22[l], b.li12[l], b.k, b.k2)
		}
		for l := 0; l < n; l++ {
			if b.skip[l] {
				continue
			}
			b.phaseCenter(l, st)
		}
		for q := 0; q < full; q++ {
			o := q * 4
			maronnaScatter4(&b.xt[o*m], &b.yt[o*m], &b.wt[o*m], m,
				&b.lt1n[o], &b.lt2n[o], &b.li11[o], &b.li22[o], &b.li12[o],
				b.k2, &b.ln11[o], &b.ln22[o], &b.ln12[o])
		}
		for l := full * 4; l < n; l++ {
			if b.skip[l] {
				continue
			}
			b.ln11[l], b.ln22[l], b.ln12[l] = maronnaScatter(b.xw[l], b.yw[l],
				b.wrow[l], b.lt1n[l], b.lt2n[l], b.li11[l], b.li22[l], b.li12[l], b.k2)
			b.wVec[l] = false
		}
		for l := 0; l < n; l++ {
			if b.skip[l] {
				continue
			}
			b.wFresh[l] = true
			if l < full*4 {
				b.wVec[l] = true
			}
			b.phaseAdvance(l, st)
		}
		b.compactDead()
	}
	b.deferC = false
	b.packed = false
	if prof {
		st.SIMDRunNs += time.Since(t0).Nanoseconds()
	}
}

// pack transposes the active lanes' windows into the quad-blocked
// tiles. It runs once per batch run — the tiles then serve every
// sweep, and compaction keeps columns attached to their lanes by
// swapping them.
func (b *pairBatch) pack() {
	m := b.m
	for l := 0; l < b.active; l++ {
		base := (l &^ 3) * m
		s := l & 3
		x, y := b.xw[l][:m], b.yw[l][:m]
		for i := 0; i < m; i++ {
			b.xt[base+i*4+s] = x[i]
			b.yt[base+i*4+s] = y[i]
		}
		b.wVec[l] = false
		b.dead[l] = false
		b.skip[l] = false
	}
	b.packed = true
}

// untranspose copies lane l's weight column out of the wt tile into
// its flat weight row (the form results are published in).
func (b *pairBatch) untranspose(l int) {
	base := (l&^3)*b.m + l&3
	w := b.wrow[l]
	for i := range w {
		w[i] = b.wt[base+i*4]
	}
}

// phaseInverse is step()'s opening: the determinant guard and the
// inverse-scatter entries, stashed per lane for the vector kernels.
func (b *pairBatch) phaseInverse(l int, st *RobustStats) {
	v11, v22, v12 := b.v11[l], b.v22[l], b.v12[l]
	det := v11*v22 - v12*v12
	if det <= 0 || v11 <= 0 || v22 <= 0 {
		if b.strict[l] {
			b.startCold(l, st)
		} else {
			b.finish(l, false, st)
		}
		b.skip[l] = true
		return
	}
	b.iters[l]++
	b.li11[l] = v22 / det
	b.li22[l] = v11 / det
	b.li12[l] = -v12 / det
}

// phaseCenter is step()'s middle: the sw==0 degeneracy guard and the
// new location from the batched location sums.
func (b *pairBatch) phaseCenter(l int, st *RobustStats) {
	sw := b.lsw[l]
	if sw == 0 {
		if b.strict[l] {
			b.startCold(l, st)
		} else {
			b.finish(l, false, st)
		}
		b.skip[l] = true
		return
	}
	b.lt1n[l], b.lt2n[l] = b.lsx[l]/sw, b.lsy[l]/sw
}

// phaseAdvance is step()'s tail from the scatter normalisation on:
// convergence test, Anderson(1) extrapolation, and iteration budget —
// the same expressions in the same order.
func (b *pairBatch) phaseAdvance(l int, st *RobustStats) {
	v11, v22, v12 := b.v11[l], b.v22[l], b.v12[l]
	t1, t2 := b.t1[l], b.t2[l]
	t1n, t2n := b.lt1n[l], b.lt2n[l]
	n11, n22, n12 := b.ln11[l], b.ln22[l], b.ln12[l]
	fn := float64(len(b.xw[l]))
	n11 /= fn
	n22 /= fn
	n12 /= fn

	den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
	num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
	g := [5]float64{t1n, t2n, n11, n22, n12}
	f := [5]float64{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
	t1, t2 = t1n, t2n
	v11, v22, v12 = n11, n22, n12
	if den > 0 && num/den < b.tol {
		b.t1[l], b.t2[l] = t1, t2
		b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12
		if b.strict[l] && (v11 <= 0 || v22 <= 0) {
			b.startCold(l, st)
			b.skip[l] = true
			return
		}
		b.finish(l, true, st)
		b.skip[l] = true
		return
	}

	if b.havePrev[l] {
		pf := &b.pf[l]
		var fd, dd float64
		for c := 0; c < 5; c++ {
			d := f[c] - pf[c]
			fd += f[c] * d
			dd += d * d
		}
		if dd > 0 {
			if theta := fd / dd; math.Abs(theta) < 16 {
				pg := &b.pg[l]
				a1 := t1n - theta*(t1n-pg[0])
				a2 := t2n - theta*(t2n-pg[1])
				a11 := n11 - theta*(n11-pg[2])
				a22 := n22 - theta*(n22-pg[3])
				a12 := n12 - theta*(n12-pg[4])
				if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
					t1, t2 = a1, a2
					v11, v22, v12 = a11, a22, a12
				}
			}
		}
	}
	b.pg[l] = g
	b.pf[l] = f
	b.havePrev[l] = true
	b.t1[l], b.t2[l] = t1, t2
	b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12

	if b.iters[l] >= b.maxIter {
		if b.strict[l] {
			b.startCold(l, st)
		} else {
			b.finish(l, false, st)
		}
		b.skip[l] = true
	}
}

// compactDead swaps lanes finalized during the sweep out of the active
// set. Running it between sweeps (rather than compacting inline like
// the scalar path) keeps quad membership stable while vector kernels
// are in flight; the resulting active sets per sweep are identical
// either way.
func (b *pairBatch) compactDead() {
	l := 0
	for l < b.active {
		if !b.dead[l] {
			l++
			continue
		}
		last := b.active - 1
		if l != last {
			b.swapLanes(l, last)
		}
		b.dead[last] = false
		b.active = last
	}
}

// step advances lane l by one fixed-point iteration, transcribing one
// trip of the reference iterate loop. It reports whether the lane is
// still active at position l (finished lanes compact another lane into
// l, so the caller must not advance).
func (b *pairBatch) step(l int, st *RobustStats) bool {
	v11, v22, v12 := b.v11[l], b.v22[l], b.v12[l]
	det := v11*v22 - v12*v12
	if det <= 0 || v11 <= 0 || v22 <= 0 {
		// Scatter collapsed: strict runs rerun cold, cold runs accept
		// the current state (the reference's break).
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	b.iters[l]++
	i11 := v22 / det
	i22 := v11 / det
	i12 := -v12 / det

	x, y := b.xw[l], b.yw[l]
	t1, t2 := b.t1[l], b.t2[l]
	sw, sx, sy := maronnaLocation(x, y, t1, t2, i11, i22, i12, b.k, b.k2)
	if sw == 0 {
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	t1n, t2n := sx/sw, sy/sw

	n11, n22, n12 := maronnaScatter(x, y, b.wrow[l], t1n, t2n, i11, i22, i12, b.k2)
	b.wFresh[l] = true
	fn := float64(len(x))
	n11 /= fn
	n22 /= fn
	n12 /= fn

	den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
	num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
	g := [5]float64{t1n, t2n, n11, n22, n12}
	f := [5]float64{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
	t1, t2 = t1n, t2n
	v11, v22, v12 = n11, n22, n12
	if den > 0 && num/den < b.tol {
		b.t1[l], b.t2[l] = t1, t2
		b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12
		if b.strict[l] && (v11 <= 0 || v22 <= 0) {
			// The reference reports a converged-but-degenerate warm fit
			// as a warm failure; rerun cold like FitScratchShared does.
			return b.startCold(l, st)
		}
		return b.finish(l, true, st)
	}

	// Anderson(1) extrapolation from the last two plain steps.
	if b.havePrev[l] {
		pf := &b.pf[l]
		var fd, dd float64
		for c := 0; c < 5; c++ {
			d := f[c] - pf[c]
			fd += f[c] * d
			dd += d * d
		}
		if dd > 0 {
			if theta := fd / dd; math.Abs(theta) < 16 {
				pg := &b.pg[l]
				a1 := t1n - theta*(t1n-pg[0])
				a2 := t2n - theta*(t2n-pg[1])
				a11 := n11 - theta*(n11-pg[2])
				a22 := n22 - theta*(n22-pg[3])
				a12 := n12 - theta*(n12-pg[4])
				// Safeguard: extrapolate only onto a usable scatter.
				if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
					t1, t2 = a1, a2
					v11, v22, v12 = a11, a22, a12
				}
			}
		}
	}
	b.pg[l] = g
	b.pf[l] = f
	b.havePrev[l] = true
	b.t1[l], b.t2[l] = t1, t2
	b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12

	if b.iters[l] >= b.maxIter {
		// Iteration budget exhausted without convergence.
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	return true
}

// finish builds lane l's Fit exactly as the reference does after its
// loop exits and finalizes the lane.
func (b *pairBatch) finish(l int, converged bool, st *RobustStats) bool {
	f := Fit{
		T1: b.t1[l], T2: b.t2[l],
		V11: b.v11[l], V22: b.v22[l], V12: b.v12[l],
		Iters: b.iters[l], Converged: converged,
	}
	if f.V11 > 0 && f.V22 > 0 {
		f.Rho = clampCorr(f.V12 / math.Sqrt(f.V11*f.V22))
		// Only cleanly converged scatters seed the next window: a
		// collapsed or budget-exhausted state would poison the chain.
		f.Valid = converged && f.V11*f.V22-f.V12*f.V12 > 0
		if b.strict[l] {
			f.Seeded = true
		}
	}
	return b.finalize(l, f, st)
}

// finalize publishes lane l's result under its tag, restores the
// all-ones weight row when no scatter pass of the accepted run wrote
// it, records the window statistics, and compacts the lane out of the
// active set (immediately on the scalar path; deferred to sweep end
// inside a phased SIMD sweep, where the lane is only marked dead). It
// always returns false (lane no longer steps at position l).
func (b *pairBatch) finalize(l int, f Fit, st *RobustStats) bool {
	if b.wVec[l] {
		// The freshest weights live in the packed tile; publish them in
		// row form now, before a later vector scatter reuses the column.
		if b.wFresh[l] {
			b.untranspose(l)
		}
		b.wVec[l] = false
	}
	if !b.wFresh[l] {
		w := b.wrow[l]
		for i := range w {
			w[i] = 1
		}
	}
	tag := b.tag[l]
	b.fits[tag] = f
	b.wOut[tag] = b.wrow[l]
	if st != nil {
		st.record(f, b.attempted[l])
	}
	if b.deferC {
		b.dead[l] = true
		b.skip[l] = true
		return false
	}
	last := b.active - 1
	if l != last {
		b.swapLanes(l, last)
	}
	b.active = last
	return false
}

// swapLanes exchanges every per-lane slot of lanes a and b.
func (b *pairBatch) swapLanes(i, j int) {
	b.xw[i], b.xw[j] = b.xw[j], b.xw[i]
	b.yw[i], b.yw[j] = b.yw[j], b.yw[i]
	b.wrow[i], b.wrow[j] = b.wrow[j], b.wrow[i]
	b.t1[i], b.t1[j] = b.t1[j], b.t1[i]
	b.t2[i], b.t2[j] = b.t2[j], b.t2[i]
	b.v11[i], b.v11[j] = b.v11[j], b.v11[i]
	b.v22[i], b.v22[j] = b.v22[j], b.v22[i]
	b.v12[i], b.v12[j] = b.v12[j], b.v12[i]
	b.pg[i], b.pg[j] = b.pg[j], b.pg[i]
	b.pf[i], b.pf[j] = b.pf[j], b.pf[i]
	b.havePrev[i], b.havePrev[j] = b.havePrev[j], b.havePrev[i]
	b.strict[i], b.strict[j] = b.strict[j], b.strict[i]
	b.attempted[i], b.attempted[j] = b.attempted[j], b.attempted[i]
	b.wFresh[i], b.wFresh[j] = b.wFresh[j], b.wFresh[i]
	b.iters[i], b.iters[j] = b.iters[j], b.iters[i]
	b.tag[i], b.tag[j] = b.tag[j], b.tag[i]
	b.ix[i], b.ix[j] = b.ix[j], b.ix[i]
	b.iy[i], b.iy[j] = b.iy[j], b.iy[i]
	b.haveInit[i], b.haveInit[j] = b.haveInit[j], b.haveInit[i]
	b.wVec[i], b.wVec[j] = b.wVec[j], b.wVec[i]
	b.dead[i], b.dead[j] = b.dead[j], b.dead[i]
	b.skip[i], b.skip[j] = b.skip[j], b.skip[i]
	if b.packed {
		b.swapCols(i, j)
	}
}

// swapCols exchanges the packed tile columns of lane positions i and j
// so compaction keeps every lane's window (and pending weight column)
// attached to its position in the quad layout.
func (b *pairBatch) swapCols(i, j int) {
	m := b.m
	bi := (i&^3)*m + i&3
	bj := (j&^3)*m + j&3
	for t := 0; t < m; t++ {
		oi, oj := bi+t*4, bj+t*4
		b.xt[oi], b.xt[oj] = b.xt[oj], b.xt[oi]
		b.yt[oi], b.yt[oj] = b.yt[oj], b.yt[oi]
		b.wt[oi], b.wt[oj] = b.wt[oj], b.wt[oi]
	}
}

// maronnaLocation is the reference location pass (Huber w1 weights on
// the Mahalanobis distance) as a free function with the bounds checks
// hoisted. The arithmetic is expression-for-expression the loop inside
// MaronnaEstimator.iterate, which stays frozen as the verification
// baseline; same inputs produce bit-identical sums.
func maronnaLocation(x, y []float64, t1, t2, i11, i22, i12, k, k2 float64) (sw, sx, sy float64) {
	y = y[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := 1.0
		if d2 > k2 {
			w = k / math.Sqrt(d2)
		}
		sw += w
		sx += w * x[i]
		sy += w * y[i]
	}
	return sw, sx, sy
}

// maronnaScatter is the reference scatter pass (Huber w2 weights),
// recording the per-observation weights into wout. See
// maronnaLocation for the sharing rationale.
func maronnaScatter(x, y, wout []float64, t1, t2, i11, i22, i12, k2 float64) (n11, n22, n12 float64) {
	y = y[:len(x)]
	wout = wout[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := 1.0
		if d2 > k2 {
			w = k2 / d2
		}
		wout[i] = w
		n11 += w * dx * dx
		n22 += w * dy * dy
		n12 += w * dx * dy
	}
	return n11, n22, n12
}
