package corr

import (
	"math"
)

// The batched Maronna kernel. The per-pair kernel (MaronnaEstimator's
// iterate/FitScratchShared) advances one pair's fixed point at a time:
// every window is a self-contained call chain whose state lives in
// locals and whose control flow (warm attempt → strict failure → cold
// restart) is expressed as early returns. That shape is convenient but
// hostile to a large pair triangle: the call overhead, the per-call
// weight reset and the one-lane-at-a-time traversal leave the CPU no
// way to overlap independent pairs.
//
// pairBatch lays the same iteration out as struct-of-arrays lanes: one
// lane per pair, the per-lane scalars (location, scatter, Anderson
// history, iteration budget, warm/cold mode) in parallel float64
// slices, and the per-observation weight rows carved out of one flat
// backing array. A sweep applies exactly one fixed-point iteration to
// every active lane; lanes that finish (converged, collapsed, or out
// of budget) drop out via swap-to-end compaction so late-converging
// pairs do not serialize the batch.
//
// Bit-identity contract: a lane executes the reference per-pair
// arithmetic — the same expressions, in the same order, on the same
// values — as MaronnaEstimator.FitScratchShared. Interleaving lanes is
// bit-neutral because no lane reads another lane's state; the only
// behavioural difference is scheduling. Two deliberate non-arithmetic
// deviations, both value-preserving:
//
//   - the weight row is not eagerly reset to all-ones per window; it
//     is filled with ones at finalization only when the accepted run
//     performed no scatter pass (degenerate exits), because any scatter
//     pass overwrites every entry anyway;
//   - a strict (warm) failure restarts the lane cold in place instead
//     of unwinding a call stack.
//
// TestMatrixEngineMatchesReference and the degenerate-batch tests are
// the gate: per-pair results must be bit-identical to running each
// pair alone through the reference.
type pairBatch struct {
	k, k2   float64
	tol     float64
	maxIter int

	m       int // window length all lanes share
	laneCap int
	active  int

	// Per-lane window views and weight rows (swapped with their lane).
	xw, yw [][]float64
	wrow   [][]float64
	wback  []float64 // flat backing for the weight rows

	// Per-lane iteration state, struct-of-arrays.
	t1, t2        []float64
	v11, v22, v12 []float64
	pg, pf        [][5]float64 // Anderson(1) history
	havePrev      []bool
	strict        []bool // current run is the warm strict attempt
	attempted     []bool // a warm attempt was made for this window
	wFresh        []bool // weight row written by the accepted run
	iters         []int
	tag           []int // caller's lane identity (stable across compaction)

	// Shared cold-start initialisers captured at add time (used again
	// if a strict run fails and the lane restarts cold).
	ix, iy   []ColdInit
	haveInit []bool

	// Results indexed by tag, valid after run() until the next begin().
	fits []Fit
	wOut [][]float64 // final weight rows, aliases into wback

	sbuf []float64 // median/MAD selection scratch for inline cold inits

	f32lane *pairBatch32 // lazily-built float32 iteration lane
}

// newPairBatch builds a batch kernel for the given (validated)
// estimator configuration. The batch grows its lane capacity on
// demand and is reused across tiles and windows by one worker.
func newPairBatch(cfg MaronnaConfig) *pairBatch {
	e := NewMaronnaEstimator(cfg) // reuse the validation defaults
	c := e.Config()
	return &pairBatch{k: c.K, k2: c.K * c.K, tol: c.Tol, maxIter: c.MaxIter}
}

// begin prepares the batch for windows of length m with up to lanes
// concurrent lanes. Calling it with previously-seen sizes performs no
// allocation; results of the previous run remain readable until the
// first add.
func (b *pairBatch) begin(m, lanes int) {
	if m != b.m || lanes > b.laneCap {
		b.grow(m, lanes)
	}
	b.active = 0
}

func (b *pairBatch) grow(m, lanes int) {
	if lanes < b.laneCap {
		lanes = b.laneCap
	}
	b.m = m
	b.laneCap = lanes
	b.xw = make([][]float64, lanes)
	b.yw = make([][]float64, lanes)
	b.wrow = make([][]float64, lanes)
	b.wback = make([]float64, lanes*m)
	b.t1 = make([]float64, lanes)
	b.t2 = make([]float64, lanes)
	b.v11 = make([]float64, lanes)
	b.v22 = make([]float64, lanes)
	b.v12 = make([]float64, lanes)
	b.pg = make([][5]float64, lanes)
	b.pf = make([][5]float64, lanes)
	b.havePrev = make([]bool, lanes)
	b.strict = make([]bool, lanes)
	b.attempted = make([]bool, lanes)
	b.wFresh = make([]bool, lanes)
	b.iters = make([]int, lanes)
	b.tag = make([]int, lanes)
	b.ix = make([]ColdInit, lanes)
	b.iy = make([]ColdInit, lanes)
	b.haveInit = make([]bool, lanes)
	b.fits = make([]Fit, lanes)
	b.wOut = make([][]float64, lanes)
	b.sbuf = make([]float64, m)
}

// add enqueues one window as a lane. x and y must have length m (the
// begin length); tag identifies the lane to the caller (0 ≤ tag <
// lanes) and indexes the fits/wOut result slots. warm, ix, iy carry
// the same meaning as in FitScratchShared. Lanes that finish without
// iterating (degenerate cold inits) resolve immediately.
func (b *pairBatch) add(x, y []float64, warm *Fit, ix, iy *ColdInit, tag int, st *RobustStats) {
	l := b.active
	b.xw[l], b.yw[l] = x, y
	b.tag[l] = tag
	// The weight row is carved out by tag, not by lane slot: a lane
	// that resolves during add frees its slot for the next add, and a
	// slot-indexed row would let that later lane overwrite the weights
	// already published under the finished lane's tag.
	b.wrow[l] = b.wback[tag*b.m : (tag+1)*b.m : (tag+1)*b.m]
	b.wFresh[l] = false
	b.iters[l] = 0
	b.havePrev[l] = false
	b.attempted[l] = warm != nil && warm.Valid
	if ix != nil && iy != nil {
		b.ix[l], b.iy[l] = *ix, *iy
		b.haveInit[l] = true
	} else {
		b.haveInit[l] = false
	}
	b.active = l + 1
	if b.attempted[l] {
		// Strict warm attempt from the previous window's fixed point.
		b.strict[l] = true
		b.t1[l], b.t2[l] = warm.T1, warm.T2
		b.v11[l], b.v22[l], b.v12[l] = warm.V11, warm.V22, warm.V12
		return
	}
	b.startCold(l, st)
}

// startCold (re)initialises lane l from the robust univariate cold
// start, finalizing immediately when a series is genuinely constant
// (no correlation defined — the reference's empty Fit). It reports
// whether the lane is still active.
func (b *pairBatch) startCold(l int, st *RobustStats) bool {
	b.strict[l] = false
	b.wFresh[l] = false
	b.iters[l] = 0
	b.havePrev[l] = false
	var i1, i2 ColdInit
	if b.haveInit[l] {
		i1, i2 = b.ix[l], b.iy[l]
	} else {
		i1 = ColdInitOf(b.sbuf, b.xw[l])
		i2 = ColdInitOf(b.sbuf, b.yw[l])
	}
	if i1.Scale == 0 || i2.Scale == 0 {
		return b.finalize(l, Fit{}, st)
	}
	b.t1[l], b.t2[l] = i1.Med, i2.Med
	b.v11[l], b.v22[l], b.v12[l] = i1.Scale*i1.Scale, i2.Scale*i2.Scale, 0
	return true
}

// run sweeps the active set until every lane has finished. One sweep
// applies one fixed-point iteration to each active lane; st (when
// non-nil) records the active-set telemetry that keeps the "where do
// the cycles go" profile measurable after batching.
func (b *pairBatch) run(st *RobustStats) {
	for b.active > 0 {
		if st != nil {
			st.recordSweep(b.active)
		}
		l := 0
		for l < b.active {
			if b.step(l, st) {
				l++
			}
		}
	}
}

// step advances lane l by one fixed-point iteration, transcribing one
// trip of the reference iterate loop. It reports whether the lane is
// still active at position l (finished lanes compact another lane into
// l, so the caller must not advance).
func (b *pairBatch) step(l int, st *RobustStats) bool {
	v11, v22, v12 := b.v11[l], b.v22[l], b.v12[l]
	det := v11*v22 - v12*v12
	if det <= 0 || v11 <= 0 || v22 <= 0 {
		// Scatter collapsed: strict runs rerun cold, cold runs accept
		// the current state (the reference's break).
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	b.iters[l]++
	i11 := v22 / det
	i22 := v11 / det
	i12 := -v12 / det

	x, y := b.xw[l], b.yw[l]
	t1, t2 := b.t1[l], b.t2[l]
	sw, sx, sy := maronnaLocation(x, y, t1, t2, i11, i22, i12, b.k, b.k2)
	if sw == 0 {
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	t1n, t2n := sx/sw, sy/sw

	n11, n22, n12 := maronnaScatter(x, y, b.wrow[l], t1n, t2n, i11, i22, i12, b.k2)
	b.wFresh[l] = true
	fn := float64(len(x))
	n11 /= fn
	n22 /= fn
	n12 /= fn

	den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
	num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
	g := [5]float64{t1n, t2n, n11, n22, n12}
	f := [5]float64{t1n - t1, t2n - t2, n11 - v11, n22 - v22, n12 - v12}
	t1, t2 = t1n, t2n
	v11, v22, v12 = n11, n22, n12
	if den > 0 && num/den < b.tol {
		b.t1[l], b.t2[l] = t1, t2
		b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12
		if b.strict[l] && (v11 <= 0 || v22 <= 0) {
			// The reference reports a converged-but-degenerate warm fit
			// as a warm failure; rerun cold like FitScratchShared does.
			return b.startCold(l, st)
		}
		return b.finish(l, true, st)
	}

	// Anderson(1) extrapolation from the last two plain steps.
	if b.havePrev[l] {
		pf := &b.pf[l]
		var fd, dd float64
		for c := 0; c < 5; c++ {
			d := f[c] - pf[c]
			fd += f[c] * d
			dd += d * d
		}
		if dd > 0 {
			if theta := fd / dd; math.Abs(theta) < 16 {
				pg := &b.pg[l]
				a1 := t1n - theta*(t1n-pg[0])
				a2 := t2n - theta*(t2n-pg[1])
				a11 := n11 - theta*(n11-pg[2])
				a22 := n22 - theta*(n22-pg[3])
				a12 := n12 - theta*(n12-pg[4])
				// Safeguard: extrapolate only onto a usable scatter.
				if a11 > 0 && a22 > 0 && a11*a22-a12*a12 > 0 {
					t1, t2 = a1, a2
					v11, v22, v12 = a11, a22, a12
				}
			}
		}
	}
	b.pg[l] = g
	b.pf[l] = f
	b.havePrev[l] = true
	b.t1[l], b.t2[l] = t1, t2
	b.v11[l], b.v22[l], b.v12[l] = v11, v22, v12

	if b.iters[l] >= b.maxIter {
		// Iteration budget exhausted without convergence.
		if b.strict[l] {
			return b.startCold(l, st)
		}
		return b.finish(l, false, st)
	}
	return true
}

// finish builds lane l's Fit exactly as the reference does after its
// loop exits and finalizes the lane.
func (b *pairBatch) finish(l int, converged bool, st *RobustStats) bool {
	f := Fit{
		T1: b.t1[l], T2: b.t2[l],
		V11: b.v11[l], V22: b.v22[l], V12: b.v12[l],
		Iters: b.iters[l], Converged: converged,
	}
	if f.V11 > 0 && f.V22 > 0 {
		f.Rho = clampCorr(f.V12 / math.Sqrt(f.V11*f.V22))
		// Only cleanly converged scatters seed the next window: a
		// collapsed or budget-exhausted state would poison the chain.
		f.Valid = converged && f.V11*f.V22-f.V12*f.V12 > 0
		if b.strict[l] {
			f.Seeded = true
		}
	}
	return b.finalize(l, f, st)
}

// finalize publishes lane l's result under its tag, restores the
// all-ones weight row when no scatter pass of the accepted run wrote
// it, records the window statistics, and compacts the lane out of the
// active set. It always returns false (lane no longer at position l).
func (b *pairBatch) finalize(l int, f Fit, st *RobustStats) bool {
	if !b.wFresh[l] {
		w := b.wrow[l]
		for i := range w {
			w[i] = 1
		}
	}
	tag := b.tag[l]
	b.fits[tag] = f
	b.wOut[tag] = b.wrow[l]
	if st != nil {
		st.record(f, b.attempted[l])
	}
	last := b.active - 1
	if l != last {
		b.swapLanes(l, last)
	}
	b.active = last
	return false
}

// swapLanes exchanges every per-lane slot of lanes a and b.
func (b *pairBatch) swapLanes(i, j int) {
	b.xw[i], b.xw[j] = b.xw[j], b.xw[i]
	b.yw[i], b.yw[j] = b.yw[j], b.yw[i]
	b.wrow[i], b.wrow[j] = b.wrow[j], b.wrow[i]
	b.t1[i], b.t1[j] = b.t1[j], b.t1[i]
	b.t2[i], b.t2[j] = b.t2[j], b.t2[i]
	b.v11[i], b.v11[j] = b.v11[j], b.v11[i]
	b.v22[i], b.v22[j] = b.v22[j], b.v22[i]
	b.v12[i], b.v12[j] = b.v12[j], b.v12[i]
	b.pg[i], b.pg[j] = b.pg[j], b.pg[i]
	b.pf[i], b.pf[j] = b.pf[j], b.pf[i]
	b.havePrev[i], b.havePrev[j] = b.havePrev[j], b.havePrev[i]
	b.strict[i], b.strict[j] = b.strict[j], b.strict[i]
	b.attempted[i], b.attempted[j] = b.attempted[j], b.attempted[i]
	b.wFresh[i], b.wFresh[j] = b.wFresh[j], b.wFresh[i]
	b.iters[i], b.iters[j] = b.iters[j], b.iters[i]
	b.tag[i], b.tag[j] = b.tag[j], b.tag[i]
	b.ix[i], b.ix[j] = b.ix[j], b.ix[i]
	b.iy[i], b.iy[j] = b.iy[j], b.iy[i]
	b.haveInit[i], b.haveInit[j] = b.haveInit[j], b.haveInit[i]
}

// maronnaLocation is the reference location pass (Huber w1 weights on
// the Mahalanobis distance) as a free function with the bounds checks
// hoisted. The arithmetic is expression-for-expression the loop inside
// MaronnaEstimator.iterate, which stays frozen as the verification
// baseline; same inputs produce bit-identical sums.
func maronnaLocation(x, y []float64, t1, t2, i11, i22, i12, k, k2 float64) (sw, sx, sy float64) {
	y = y[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := 1.0
		if d2 > k2 {
			w = k / math.Sqrt(d2)
		}
		sw += w
		sx += w * x[i]
		sy += w * y[i]
	}
	return sw, sx, sy
}

// maronnaScatter is the reference scatter pass (Huber w2 weights),
// recording the per-observation weights into wout. See
// maronnaLocation for the sharing rationale.
func maronnaScatter(x, y, wout []float64, t1, t2, i11, i22, i12, k2 float64) (n11, n22, n12 float64) {
	y = y[:len(x)]
	wout = wout[:len(x)]
	for i := range x {
		dx, dy := x[i]-t1, y[i]-t2
		d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
		w := 1.0
		if d2 > k2 {
			w = k2 / d2
		}
		wout[i] = w
		n11 += w * dx * dx
		n22 += w * dy * dy
		n12 += w * dx * dy
	}
	return n11, n22, n12
}
