package corr

import (
	"math"
	"math/rand"
	"testing"
)

// simdAdversarialUniverse builds a return set that stresses every
// batch control path: fat tails, a constant stock (degenerate cold
// inits, lanes resolving before the first sweep), a near-collinear
// pair (determinant collapses), and a mid-stream level shift (warm
// strict failures and cold restarts mid-chain).
func simdAdversarialUniverse(n, T int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rets := make([][]float64, n)
	for s := range rets {
		rets[s] = make([]float64, T)
		for i := range rets[s] {
			v := 1e-3 * rng.NormFloat64()
			if rng.Intn(31) == 0 {
				v *= 50
			}
			rets[s][i] = v
		}
	}
	if n > 2 {
		for i := range rets[2] {
			rets[2][i] = 0
		}
	}
	if n > 4 {
		for i := range rets[3] {
			rets[3][i] = rets[4][i] + 1e-12*rng.NormFloat64()
		}
	}
	if n > 5 {
		for i := T / 2; i < T; i++ {
			rets[5][i] *= 1e5
		}
	}
	return rets
}

// seriesBitEqual asserts two series sets are bitwise identical
// (NaN-safe) and fails the test with context when they are not.
func seriesBitEqual(t *testing.T, label string, got, want []*Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d series, want %d", label, len(got), len(want))
	}
	for oi := range want {
		for k := range want[oi].Corr {
			for w := range want[oi].Corr[k] {
				g, r := got[oi].Corr[k][w], want[oi].Corr[k][w]
				if math.Float64bits(g) != math.Float64bits(r) {
					t.Fatalf("%s: series %v pair %d window %d: got %v (%x), want %v (%x)",
						label, want[oi].Type, k, w, g, math.Float64bits(g), r, math.Float64bits(r))
				}
			}
		}
	}
}

// TestSIMDBitIdentityRaggedLanes pins the SIMD f64 path bitwise to the
// frozen per-pair reference across every batch occupancy from one lane
// to four-plus quads: TileSize L makes the matrix engine run batches
// of exactly L lanes (the last tile ragged), so L = 1..17 walks the
// quad boundaries (<4 all-scalar, 4 one quad, 5..7 quad+tail, 8, 12,
// 16 multi-quad, 17 four quads + one). The adversarial universe keeps
// mid-sweep resolution, compaction, and warm/strict restarts in play
// at every width. If the host (or build) has no AVX2 the SIMD config
// degrades to scalar and the test still checks engine-vs-reference.
func TestSIMDBitIdentityRaggedLanes(t *testing.T) {
	const n, T, m = 8, 220, 60
	rets := simdAdversarialUniverse(n, T, 20080305)
	types := []Type{Maronna, Combined}

	ref, err := ComputeSeriesMultiReference(EngineConfig{M: m, Workers: 1}, types, rets)
	if err != nil {
		t.Fatal(err)
	}
	for lanes := 1; lanes <= 17; lanes++ {
		simd, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: 1, TileSize: lanes}, types, rets)
		if err != nil {
			t.Fatal(err)
		}
		seriesBitEqual(t, "simd vs reference", simd, ref)
		scal, err := ComputeMatrixSeries(EngineConfig{M: m, Workers: 1, TileSize: lanes, DisableSIMD: true}, types, rets)
		if err != nil {
			t.Fatal(err)
		}
		seriesBitEqual(t, "scalar vs reference", scal, ref)
	}
}

// TestSIMDWarmChainRestarts drives pairBatch directly through a
// multi-window warm chain — every window seeded from the previous
// fit, exactly like tileRun — over lanes whose chains break mid-stream
// (level shifts force strict failures, a dead stock forces degenerate
// exits, NaN poisoning wanders to budget exhaustion), under both
// dispatch tiers, checking fits and weight rows bitwise against the
// per-pair reference at every window.
func TestSIMDWarmChainRestarts(t *testing.T) {
	const lanes, T, m = 11, 150, 40
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, lanes)
	ys := make([][]float64, lanes)
	for l := range xs {
		xs[l] = make([]float64, T)
		ys[l] = make([]float64, T)
		for i := 0; i < T; i++ {
			f := rng.NormFloat64()
			xs[l][i] = 1e-3 * (f + 0.4*rng.NormFloat64())
			ys[l][i] = 1e-3 * (f + 0.4*rng.NormFloat64())
		}
	}
	for i := T / 3; i < T; i++ {
		xs[1][i] *= 1e5 // level shift mid-chain: strict failures
	}
	for i := range xs[2] {
		xs[2][i] = 0 // dead stock: degenerate every window
	}
	copy(ys[3], xs[3]) // collinear: determinant collapse
	xs[4][T/2] = math.NaN()
	ys[4][T/2+3] = math.NaN() // poisoned stretch of windows

	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	steps := T - m + 1

	// Reference: each lane alone, warm-chained per pair.
	refFits := make([][]Fit, lanes)
	refW := make([][][]float64, lanes)
	var sc *Scratch
	for l := 0; l < lanes; l++ {
		refFits[l] = make([]Fit, steps)
		refW[l] = make([][]float64, steps)
		var warm Fit
		for ti := 0; ti < steps; ti++ {
			var f Fit
			f, sc = est.FitScratchShared(xs[l][ti:ti+m], ys[l][ti:ti+m], sc, &warm, nil, nil)
			refFits[l][ti] = f
			refW[l][ti] = append([]float64(nil), sc.Weights()...)
			warm = f
		}
	}

	for _, simd := range []bool{false, true} {
		b := newPairBatch(est.Config(), simd)
		b.begin(m, lanes)
		warm := make([]Fit, lanes)
		for ti := 0; ti < steps; ti++ {
			for l := 0; l < lanes; l++ {
				b.add(xs[l][ti:ti+m], ys[l][ti:ti+m], &warm[l], nil, nil, l, nil)
			}
			b.run(nil)
			for l := 0; l < lanes; l++ {
				f := b.fits[l]
				if !fitsBitEqual(f, refFits[l][ti]) {
					t.Fatalf("simd=%v lane %d window %d: fit %+v, reference %+v", simd, l, ti, f, refFits[l][ti])
				}
				for j := range refW[l][ti] {
					if math.Float64bits(b.wOut[l][j]) != math.Float64bits(refW[l][ti][j]) {
						t.Fatalf("simd=%v lane %d window %d: weight[%d] = %v, reference %v",
							simd, l, ti, j, b.wOut[l][j], refW[l][ti][j])
					}
				}
				warm[l] = f
			}
		}
	}
}

// FuzzSIMDMatchesScalar feeds randomized batches — ragged lane counts,
// random window lengths, occasional NaN, zero-variance and collinear
// corruption, warm seeds of every flavor — through both dispatch tiers
// and requires bitwise-identical fits and weight rows. On hosts
// without AVX2 both tiers run scalar and the fuzz degenerates to a
// determinism check.
func FuzzSIMDMatchesScalar(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(16))
	f.Add(int64(2), uint8(7), uint8(31))
	f.Add(int64(3), uint8(13), uint8(24))
	f.Add(int64(99), uint8(1), uint8(60))
	f.Add(int64(1234), uint8(17), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, lanesRaw, mRaw uint8) {
		lanes := int(lanesRaw)%17 + 1
		m := int(mRaw)%56 + 8
		rng := rand.New(rand.NewSource(seed))
		xs := make([][]float64, lanes)
		ys := make([][]float64, lanes)
		warms := make([]*Fit, lanes)
		for l := range xs {
			xs[l] = make([]float64, m)
			ys[l] = make([]float64, m)
			for i := 0; i < m; i++ {
				fv := rng.NormFloat64()
				xs[l][i] = 1e-3 * (fv + 0.5*rng.NormFloat64())
				ys[l][i] = 1e-3 * (fv + 0.5*rng.NormFloat64())
			}
			switch rng.Intn(8) {
			case 0:
				xs[l][rng.Intn(m)] = math.NaN()
			case 1:
				for i := range xs[l] {
					xs[l][i] = 0
				}
			case 2:
				copy(ys[l], xs[l])
			case 3:
				for i := m / 2; i < m; i++ {
					xs[l][i] *= 1e6
				}
			}
			switch rng.Intn(4) {
			case 0:
				w := Fit{T1: rng.NormFloat64(), T2: rng.NormFloat64(),
					V11: rng.Float64(), V22: rng.Float64(), V12: rng.NormFloat64() * 0.1, Valid: true}
				warms[l] = &w
			case 1:
				warms[l] = &Fit{T1: math.NaN(), V11: 1, V22: 1, Valid: true}
			}
		}
		cfg := DefaultMaronnaConfig()
		run := func(simd bool) ([]Fit, [][]float64) {
			b := newPairBatch(cfg, simd)
			b.begin(m, lanes)
			for l := 0; l < lanes; l++ {
				b.add(xs[l], ys[l], warms[l], nil, nil, l, nil)
			}
			b.run(nil)
			fits := append([]Fit(nil), b.fits[:lanes]...)
			ws := make([][]float64, lanes)
			for l := range ws {
				ws[l] = append([]float64(nil), b.wOut[l]...)
			}
			return fits, ws
		}
		sf, sw := run(false)
		vf, vw := run(true)
		for l := 0; l < lanes; l++ {
			if !fitsBitEqual(sf[l], vf[l]) {
				t.Fatalf("lane %d: scalar fit %+v, simd fit %+v", l, sf[l], vf[l])
			}
			for j := range sw[l] {
				if math.Float64bits(sw[l][j]) != math.Float64bits(vw[l][j]) {
					t.Fatalf("lane %d weight[%d]: scalar %v, simd %v", l, j, sw[l][j], vw[l][j])
				}
			}
		}
	})
}

// TestSIMDEnvKillOutranksMode pins the dispatch precedence: MM_NOSIMD
// (resolved at init into simdEnvOff) must keep the scalar tier even
// when SetSIMDMode("auto") — every CLI's flag default — runs after it.
func TestSIMDEnvKillOutranksMode(t *testing.T) {
	if !simdSupported {
		t.Skip("host has no vector tier; precedence is unobservable")
	}
	defer func(env bool) {
		simdEnvOff = env
		if err := SetSIMDMode("auto"); err != nil {
			t.Fatal(err)
		}
	}(simdEnvOff)

	simdEnvOff = true
	if err := SetSIMDMode("auto"); err != nil {
		t.Fatal(err)
	}
	if got := SIMDTier(); got != SIMDTierScalar {
		t.Fatalf("SIMDTier() = %q with env kill set and mode auto, want %q", got, SIMDTierScalar)
	}
	if got := SIMDSupported(); got != SIMDTierAVX2 {
		t.Fatalf("SIMDSupported() = %q, want %q (env kill must not hide capability)", got, SIMDTierAVX2)
	}
	simdEnvOff = false
	if err := SetSIMDMode("off"); err != nil {
		t.Fatal(err)
	}
	if got := SIMDTier(); got != SIMDTierScalar {
		t.Fatalf("SIMDTier() = %q after SetSIMDMode(off), want %q", got, SIMDTierScalar)
	}
}
