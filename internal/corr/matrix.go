package corr

import (
	"errors"
	"fmt"
	"math"

	"marketminer/internal/taq"
)

// Matrix is a symmetric n×n correlation matrix with unit diagonal,
// stored as the strictly-upper triangle in taq.PairID order. For the
// paper's 61-stock universe a Matrix holds 1830 values; MarketMiner
// produces one per grid interval per trading day.
type Matrix struct {
	n    int
	vals []float64
}

// NewMatrix allocates an identity correlation matrix of order n.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		n = 1
	}
	return &Matrix{n: n, vals: make([]float64, n*(n-1)/2)}
}

// Order returns n.
func (m *Matrix) Order() int { return m.n }

// NumPairs returns n(n-1)/2.
func (m *Matrix) NumPairs() int { return len(m.vals) }

// At returns C[i][j] (1 on the diagonal).
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 1
	}
	return m.vals[taq.PairID(i, j, m.n)]
}

// Set stores C[i][j] = C[j][i] = c. Setting the diagonal is a no-op.
func (m *Matrix) Set(i, j int, c float64) {
	if i == j {
		return
	}
	m.vals[taq.PairID(i, j, m.n)] = c
}

// AtPair returns the coefficient by canonical pair id.
func (m *Matrix) AtPair(id int) float64 { return m.vals[id] }

// SetPair stores the coefficient by canonical pair id.
func (m *Matrix) SetPair(id int, c float64) { m.vals[id] = c }

// Values exposes the underlying triangle (pair-id order). The slice is
// shared, not copied; treat as read-only.
func (m *Matrix) Values() []float64 { return m.vals }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{n: m.n, vals: make([]float64, len(m.vals))}
	copy(cp.vals, m.vals)
	return cp
}

// dense expands to a full row-major n×n matrix (for PSD checks).
func (m *Matrix) dense() []float64 {
	n := m.n
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		d[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}
	return d
}

// IsPSD reports whether the matrix is positive semi-definite, tested by
// attempting a Cholesky factorisation with tolerance tol on pivot
// non-negativity. The paper notes that "calculating the Maronna
// correlation coefficients independently no longer assures the
// resulting matrix is positive semi-definite" — this check makes the
// property observable.
func (m *Matrix) IsPSD(tol float64) bool {
	return choleskyOK(m.dense(), m.n, tol)
}

// choleskyOK runs an in-place Cholesky on dense a (row-major, order n);
// pivots ≥ -tol are accepted and clamped to zero.
func choleskyOK(a []float64, n int, tol float64) bool {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d < -tol {
			return false
		}
		if d < 0 {
			d = 0
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			if d > 0 {
				a[i*n+j] = s / d
			} else {
				a[i*n+j] = 0
			}
		}
	}
	return true
}

// ErrNotConverged is returned by EnsurePSD when shrinking cannot reach
// positive semi-definiteness within the step budget.
var ErrNotConverged = errors.New("corr: PSD repair did not converge")

// EnsurePSD returns a PSD matrix near m by shrinking toward the
// identity: C(λ) = (1−λ)·C + λ·I, doubling λ from 1e-4 until the
// Cholesky test passes. Shrinkage preserves the unit diagonal and
// ordering of coefficients, which is what the trading strategy consumes
// (the paper flags non-PSD per-pair Maronna matrices as a defect of the
// Matlab approach; the integrated engine repairs them). Returns the
// repaired matrix and the λ used (0 when m was already PSD).
func EnsurePSD(m *Matrix, tol float64) (*Matrix, float64, error) {
	if m.IsPSD(tol) {
		return m, 0, nil
	}
	lambda := 1e-4
	for iter := 0; iter < 32; iter++ {
		cp := m.Clone()
		for i, v := range cp.vals {
			cp.vals[i] = v * (1 - lambda)
		}
		if cp.IsPSD(tol) {
			return cp, lambda, nil
		}
		lambda *= 2
		if lambda >= 1 {
			break
		}
	}
	// λ = 1 is the identity, which is always PSD.
	cp := m.Clone()
	for i := range cp.vals {
		cp.vals[i] = 0
	}
	return cp, 1, ErrNotConverged
}

// Validate checks every coefficient is finite and in [-1, 1].
func (m *Matrix) Validate() error {
	for id, v := range m.vals {
		if math.IsNaN(v) || v < -1 || v > 1 {
			return fmt.Errorf("corr: coefficient %d out of range: %v", id, v)
		}
	}
	return nil
}
