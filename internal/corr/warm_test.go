package corr

import (
	"math"
	"math/rand"
	"testing"

	"marketminer/internal/clean"
	"marketminer/internal/market"
	"marketminer/internal/series"
	"marketminer/internal/taq"
)

// marketReturns generates one synthetic trading day with heavy
// contamination and correlation breakdowns — the regimes where the
// robust estimator's iteration is stressed hardest — and runs it
// through the production cleaning/sampling path to log-return rows.
func marketReturns(t testing.TB, stocks int, seed int64) [][]float64 {
	t.Helper()
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		t.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 1
	mc.Seed = seed
	mc.Contamination = 0.02 // heavy: forces real outlier down-weighting
	mc.BreakdownsPerDay = 10
	gen, err := market.NewGenerator(mc)
	if err != nil {
		t.Fatal(err)
	}
	mc = gen.Config()
	md, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _ := clean.Clean(clean.Config{}, md.Quotes)
	grid, err := series.NewGrid(30)
	if err != nil {
		t.Fatal(err)
	}
	sm := series.NewSampler(grid, mc.Universe)
	for _, q := range cleaned {
		sm.Add(q)
	}
	pg := sm.Finish()
	if err := series.Backfill(pg); err != nil {
		t.Fatal(err)
	}
	return series.ReturnGrid(pg)
}

// TestWarmStartMatchesColdStart is the warm-start equivalence property
// test: every coefficient of a warm-chained engine run must agree with
// an independent cold-start fit of the same window to well inside the
// estimator's convergence tolerance, on realistic contaminated market
// data and across treatments.
func TestWarmStartMatchesColdStart(t *testing.T) {
	rets := marketReturns(t, 6, 20080301)
	const m = 60
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	cest := NewCombinedEstimator(DefaultMaronnaConfig())

	css, err := ComputeSeriesMulti(EngineConfig{M: m, Workers: 3}, []Type{Maronna, Combined}, rets)
	if err != nil {
		t.Fatal(err)
	}
	maronna, combined := css[0], css[1]

	var sc *Scratch
	var checked, coldIters int
	allPairs := taq.AllPairs(maronna.N)
	for k, pid := range maronna.Pairs {
		x := rets[allPairs[pid].I]
		y := rets[allPairs[pid].J]
		// Every 7th window keeps the test fast while still covering
		// breakdown and contamination segments across the day.
		for w := 0; w < maronna.Len(); w += 7 {
			var cf Fit
			cf, sc = est.FitScratch(x[w:w+m], y[w:w+m], sc, nil)
			coldIters += cf.Iters
			if d := math.Abs(maronna.Corr[k][w] - cf.Rho); d > 1e-6 {
				t.Fatalf("pair %d window %d: warm Maronna %v vs cold %v (|Δ|=%v)",
					pid, w, maronna.Corr[k][w], cf.Rho, d)
			}
			var cold float64
			cold, sc = cest.CorrScratch(x[w:w+m], y[w:w+m], sc)
			if d := math.Abs(combined.Corr[k][w] - cold); d > 1e-6 {
				t.Fatalf("pair %d window %d: warm Combined %v vs cold %v (|Δ|=%v)",
					pid, w, combined.Corr[k][w], cold, d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no windows checked")
	}

	st := maronna.Robust
	if st == nil || st.Windows == 0 {
		t.Fatal("no robust stats collected")
	}
	if st.Windows != maronna.Len()*len(maronna.Pairs) {
		t.Errorf("stats cover %d windows, want %d", st.Windows, maronna.Len()*len(maronna.Pairs))
	}
	if st.WarmHits+st.ColdStarts != st.Windows {
		t.Errorf("warm %d + cold %d != windows %d", st.WarmHits, st.ColdStarts, st.Windows)
	}
	var hist int
	for _, c := range st.IterHist {
		hist += c
	}
	if hist != st.Windows {
		t.Errorf("iteration histogram sums to %d, want %d", hist, st.Windows)
	}
	// The win itself: overwhelmingly warm windows (each of which skips
	// the O(m) median/MAD initialisation entirely) and fewer mean
	// iterations than the cold chain measured above on the same
	// sampled windows.
	if frac := float64(st.WarmHits) / float64(st.Windows); frac < 0.9 {
		t.Errorf("warm-hit fraction %.3f, want ≥ 0.9", frac)
	}
	coldMean := float64(coldIters) / float64(checked)
	if mi := st.MeanIters(); mi >= coldMean {
		t.Errorf("warm mean iterations %.2f not below cold mean %.2f", mi, coldMean)
	}
}

// TestComputeSeriesMultiMatchesSingle pins the fusion contract: the
// fused Maronna+Combined pass must emit bit-identical series to the
// single-treatment runs (which share the same warm-chain code path).
func TestComputeSeriesMultiMatchesSingle(t *testing.T) {
	rets := marketReturns(t, 5, 7)
	const m = 50
	css, err := ComputeSeriesMulti(EngineConfig{M: m, Workers: 2}, []Type{Pearson, Maronna, Combined}, rets)
	if err != nil {
		t.Fatal(err)
	}
	for oi, ty := range []Type{Pearson, Maronna, Combined} {
		single, err := ComputeSeries(EngineConfig{Type: ty, M: m, Workers: 2}, rets)
		if err != nil {
			t.Fatal(err)
		}
		for k := range single.Corr {
			for w := range single.Corr[k] {
				if single.Corr[k][w] != css[oi].Corr[k][w] {
					t.Fatalf("%v: fused and single runs differ at pair %d window %d: %v vs %v",
						ty, k, w, css[oi].Corr[k][w], single.Corr[k][w])
				}
			}
		}
	}
}

// TestComputeSeriesMultiDeterministic asserts run-to-run bit
// determinism of the warm-started engine, including with different
// worker counts (the warm chain is per-pair and sequential in t, so
// sharding must not affect it).
func TestComputeSeriesMultiDeterministic(t *testing.T) {
	rets := marketReturns(t, 5, 99)
	const m = 40
	run := func(workers int) []*Series {
		css, err := ComputeSeriesMulti(EngineConfig{M: m, Workers: workers}, []Type{Maronna, Combined}, rets)
		if err != nil {
			t.Fatal(err)
		}
		return css
	}
	a, b, c := run(3), run(3), run(8)
	for oi := range a {
		for k := range a[oi].Corr {
			for w := range a[oi].Corr[k] {
				if a[oi].Corr[k][w] != b[oi].Corr[k][w] {
					t.Fatalf("run-to-run nondeterminism at series %d pair %d window %d", oi, k, w)
				}
				if a[oi].Corr[k][w] != c[oi].Corr[k][w] {
					t.Fatalf("worker count changed result at series %d pair %d window %d", oi, k, w)
				}
			}
		}
	}
	if a[0].Robust.Windows != b[0].Robust.Windows || a[0].Robust.WarmHits != b[0].Robust.WarmHits {
		t.Error("robust stats differ between identical runs")
	}
}

// TestComputeSeriesMultiValidation covers the request-shape errors.
func TestComputeSeriesMultiValidation(t *testing.T) {
	rets := [][]float64{make([]float64, 30), make([]float64, 30)}
	if _, err := ComputeSeriesMulti(EngineConfig{M: 10}, nil, rets); err == nil {
		t.Error("empty type list should error")
	}
	if _, err := ComputeSeriesMulti(EngineConfig{M: 10}, []Type{Maronna, Maronna}, rets); err == nil {
		t.Error("duplicate types should error")
	}
	if _, err := ComputeSeriesMulti(EngineConfig{M: 10}, []Type{Type(99)}, rets); err == nil {
		t.Error("unknown type should error")
	}
}

// TestMaronnaSteadyStateZeroAllocs is the allocation-regression gate:
// once the per-worker scratch is warm, the sliding Maronna window loop
// (warm-started fits and the Combined derivation included) must not
// allocate.
func TestMaronnaSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, T = 100, 400
	x := make([]float64, T)
	y := make([]float64, T)
	for i := range x {
		f := rng.NormFloat64()
		x[i] = f + 0.3*rng.NormFloat64()
		y[i] = f + 0.3*rng.NormFloat64()
	}
	est := NewMaronnaEstimator(DefaultMaronnaConfig())
	sc := &Scratch{}
	var warm Fit
	// Warm the scratch and the chain.
	warm, sc = est.FitScratch(x[:m], y[:m], sc, nil)
	tt := 0
	allocs := testing.AllocsPerRun(200, func() {
		tt = (tt + 1) % (T - m)
		var f Fit
		f, sc = est.FitScratch(x[tt:tt+m], y[tt:tt+m], sc, &warm)
		_ = CombinedFromFit(x[tt:tt+m], y[tt:tt+m], f.Rho, sc.Weights())
		warm = f
	})
	if allocs != 0 {
		t.Fatalf("steady-state window loop allocates %.1f times per window, want 0", allocs)
	}

	// Cold starts must also be allocation-free once scratch is sized
	// (the quickselect init works entirely in scratch buffers).
	allocs = testing.AllocsPerRun(200, func() {
		tt = (tt + 1) % (T - m)
		_, sc = est.CorrScratch(x[tt:tt+m], y[tt:tt+m], sc)
	})
	if allocs != 0 {
		t.Fatalf("cold window loop allocates %.1f times per window, want 0", allocs)
	}
}
