//go:build !noasm

#include "textflag.h"

// Lane-major AVX2 kernels for the batched Maronna weight passes.
//
// Each kernel advances 4 (f64) or 8 (f32) lanes in lockstep over a
// quad/oct-packed obs-major tile: element i of vector slot s lives at
// offset i*W+s of the tile (W = 4 or 8). A lane's accumulators are
// pinned to its vector slot, so per lane the instruction stream is
// exactly the scalar reference's expression order:
//
//	dx := x[i] - t1
//	dy := y[i] - t2
//	d2 := (dx*dx)*i11 + ((2*dx)*dy)*i12 + (dy*dy)*i22
//	w  := 1.0; if d2 > k2 { w = k/sqrt(d2) }   (location)
//	                        w = k2/d2          (scatter)
//
// with 2*dx computed as dx+dx (bit-identical for every input, NaN
// included). VCMPPD/VCMPPS use predicate 30 (GT_OQ), matching Go's
// `d2 > k2` NaN-is-false semantics. The d2 <= k2 fast path (taken for
// ~86% of observations on market data) skips the sqrt/div entirely and
// accumulates sw += 1, sx += x, sy += y — bit-identical to the scalar
// w = 1.0 products because 1.0*v == v for every float64 v, including
// NaN payloads (multiplication by one returns the quieted NaN operand
// unchanged). When any of the four lanes exceeds k2 the whole vector
// takes the sqrt/div and blends w = 1.0 back into the lanes that did
// not — the blended lanes still see exactly the 1.0*v products.
//
// No FMA anywhere: gc's scalar codegen does not fuse the reference's
// mul/add chains, so a fused kernel would not be bit-identical.

DATA one64<>+0(SB)/8, $0x3FF0000000000000 // float64(1.0)
GLOBL one64<>(SB), RODATA|NOPTR, $8

DATA one32<>+0(SB)/4, $0x3F800000 // float32(1.0)
GLOBL one32<>(SB), RODATA|NOPTR, $4

// func maronnaLocation4(xt, yt *float64, m int, t1, t2, i11, i22, i12 *float64, k, k2 float64, sw, sx, sy *float64)
//
// Register plan:
//	SI/DI   xt/yt cursors (advance 32 bytes per observation)
//	CX      remaining observations
//	Y0..Y4  t1, t2, i11, i22, i12 (per-lane, loaded from the quad)
//	Y5/Y6   k, k2 broadcast
//	Y7      1.0 broadcast
//	Y8..Y10 sw, sx, sy accumulators
//	Y11..Y15 temps
TEXT ·maronnaLocation4(SB), NOSPLIT, $0-104
	MOVQ xt+0(FP), SI
	MOVQ yt+8(FP), DI
	MOVQ m+16(FP), CX
	MOVQ t1+24(FP), AX
	VMOVUPD (AX), Y0
	MOVQ t2+32(FP), AX
	VMOVUPD (AX), Y1
	MOVQ i11+40(FP), AX
	VMOVUPD (AX), Y2
	MOVQ i22+48(FP), AX
	VMOVUPD (AX), Y3
	MOVQ i12+56(FP), AX
	VMOVUPD (AX), Y4
	VBROADCASTSD k+64(FP), Y5
	VBROADCASTSD k2+72(FP), Y6
	VBROADCASTSD one64<>(SB), Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	TESTQ CX, CX
	JZ   locdone

locloop:
	VMOVUPD (SI), Y11          // x
	VMOVUPD (DI), Y12          // y
	VSUBPD  Y0, Y11, Y11       // dx = x - t1
	VSUBPD  Y1, Y12, Y12       // dy = y - t2
	VMULPD  Y11, Y11, Y13      // dx*dx
	VMULPD  Y2, Y13, Y13       // (dx*dx)*i11
	VADDPD  Y11, Y11, Y14      // 2*dx = dx+dx
	VMULPD  Y12, Y14, Y14      // (2*dx)*dy
	VMULPD  Y4, Y14, Y14       // ((2*dx)*dy)*i12
	VADDPD  Y14, Y13, Y13      // a+b
	VMULPD  Y12, Y12, Y14      // dy*dy
	VMULPD  Y3, Y14, Y14       // (dy*dy)*i22
	VADDPD  Y14, Y13, Y13      // d2 = (a+b)+c
	VCMPPD  $30, Y6, Y13, Y14  // mask = d2 > k2 (GT_OQ, NaN -> false)
	VMOVMSKPD Y14, AX
	TESTL   AX, AX
	JNE     locslow
	// All four lanes inside the Huber band: w = 1 everywhere.
	VADDPD  Y7, Y8, Y8         // sw += 1
	VMOVUPD (SI), Y11
	VADDPD  Y11, Y9, Y9        // sx += x (== 1.0*x bitwise)
	VMOVUPD (DI), Y12
	VADDPD  Y12, Y10, Y10      // sy += y
	JMP     locnext

locslow:
	VSQRTPD Y13, Y15           // sqrt(d2) (junk in unmasked lanes, blended away)
	VDIVPD  Y15, Y5, Y15       // k / sqrt(d2)
	VBLENDVPD Y14, Y15, Y7, Y15 // w = mask ? k/sqrt(d2) : 1.0
	VADDPD  Y15, Y8, Y8        // sw += w
	VMOVUPD (SI), Y11
	VMULPD  Y11, Y15, Y11      // w*x
	VADDPD  Y11, Y9, Y9        // sx += w*x
	VMOVUPD (DI), Y12
	VMULPD  Y12, Y15, Y12      // w*y
	VADDPD  Y12, Y10, Y10      // sy += w*y

locnext:
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  locloop

locdone:
	MOVQ sw+80(FP), AX
	VMOVUPD Y8, (AX)
	MOVQ sx+88(FP), AX
	VMOVUPD Y9, (AX)
	MOVQ sy+96(FP), AX
	VMOVUPD Y10, (AX)
	VZEROUPPER
	RET

// func maronnaScatter4(xt, yt, wt *float64, m int, t1, t2, i11, i22, i12 *float64, k2 float64, n11, n22, n12 *float64)
//
// Same register plan as maronnaLocation4 (Y5 unused: scatter needs
// only k2); BX cursors the weight tile. Accumulation order per lane is
// the scalar reference's left association: n11 += (w*dx)*dx,
// n22 += (w*dy)*dy, n12 += (w*dx)*dy.
TEXT ·maronnaScatter4(SB), NOSPLIT, $0-104
	MOVQ xt+0(FP), SI
	MOVQ yt+8(FP), DI
	MOVQ wt+16(FP), BX
	MOVQ m+24(FP), CX
	MOVQ t1+32(FP), AX
	VMOVUPD (AX), Y0
	MOVQ t2+40(FP), AX
	VMOVUPD (AX), Y1
	MOVQ i11+48(FP), AX
	VMOVUPD (AX), Y2
	MOVQ i22+56(FP), AX
	VMOVUPD (AX), Y3
	MOVQ i12+64(FP), AX
	VMOVUPD (AX), Y4
	VBROADCASTSD k2+72(FP), Y6
	VBROADCASTSD one64<>(SB), Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	TESTQ CX, CX
	JZ   scadone

scaloop:
	VMOVUPD (SI), Y11          // x
	VMOVUPD (DI), Y12          // y
	VSUBPD  Y0, Y11, Y11       // dx (x dead: scatter only needs dx/dy)
	VSUBPD  Y1, Y12, Y12       // dy
	VMULPD  Y11, Y11, Y13      // dx*dx
	VMULPD  Y2, Y13, Y13       // *i11
	VADDPD  Y11, Y11, Y14      // 2*dx
	VMULPD  Y12, Y14, Y14      // *dy
	VMULPD  Y4, Y14, Y14       // *i12
	VADDPD  Y14, Y13, Y13
	VMULPD  Y12, Y12, Y14      // dy*dy
	VMULPD  Y3, Y14, Y14       // *i22
	VADDPD  Y14, Y13, Y13      // d2
	VCMPPD  $30, Y6, Y13, Y14  // mask = d2 > k2
	VMOVMSKPD Y14, AX
	TESTL   AX, AX
	JNE     scaslow
	// w = 1 everywhere: weights are ones, moments are the raw products.
	VMOVUPD Y7, (BX)
	VMULPD  Y11, Y11, Y15      // (1*dx)*dx == dx*dx
	VADDPD  Y15, Y8, Y8
	VMULPD  Y12, Y12, Y15      // dy*dy
	VADDPD  Y15, Y9, Y9
	VMULPD  Y12, Y11, Y15      // dx*dy
	VADDPD  Y15, Y10, Y10
	JMP     scanext

scaslow:
	VDIVPD  Y13, Y6, Y15       // k2/d2
	VBLENDVPD Y14, Y15, Y7, Y15 // w = mask ? k2/d2 : 1.0
	VMOVUPD Y15, (BX)          // wout[i] = w
	VMULPD  Y11, Y15, Y14      // w*dx
	VMULPD  Y11, Y14, Y14      // (w*dx)*dx
	VADDPD  Y14, Y8, Y8        // n11 +=
	VMULPD  Y12, Y15, Y14      // w*dy
	VMULPD  Y12, Y14, Y14      // (w*dy)*dy
	VADDPD  Y14, Y9, Y9        // n22 +=
	VMULPD  Y11, Y15, Y14      // w*dx
	VMULPD  Y12, Y14, Y14      // (w*dx)*dy
	VADDPD  Y14, Y10, Y10      // n12 +=

scanext:
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, BX
	DECQ CX
	JNZ  scaloop

scadone:
	MOVQ n11+80(FP), AX
	VMOVUPD Y8, (AX)
	MOVQ n22+88(FP), AX
	VMOVUPD Y9, (AX)
	MOVQ n12+96(FP), AX
	VMOVUPD Y10, (AX)
	VZEROUPPER
	RET

// func maronnaLocation8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k, k2 float32, sw, sx, sy *float32)
//
// 8-wide single-precision variant of maronnaLocation4, mirroring
// maronnaLocation32 (the f32 lane has an accuracy contract, not a
// bit-identity one, but the operation order still matches). VSQRTPS is
// the correctly-rounded single-precision root, the same operation the
// scalar float32(math.Sqrt(float64(d2))) idiom compiles to.
TEXT ·maronnaLocation8f(SB), NOSPLIT, $0-96
	MOVQ xt+0(FP), SI
	MOVQ yt+8(FP), DI
	MOVQ m+16(FP), CX
	MOVQ t1+24(FP), AX
	VMOVUPS (AX), Y0
	MOVQ t2+32(FP), AX
	VMOVUPS (AX), Y1
	MOVQ i11+40(FP), AX
	VMOVUPS (AX), Y2
	MOVQ i22+48(FP), AX
	VMOVUPS (AX), Y3
	MOVQ i12+56(FP), AX
	VMOVUPS (AX), Y4
	VBROADCASTSS k+64(FP), Y5
	VBROADCASTSS k2+68(FP), Y6
	VBROADCASTSS one32<>(SB), Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	TESTQ CX, CX
	JZ   loc8done

loc8loop:
	VMOVUPS (SI), Y11
	VMOVUPS (DI), Y12
	VSUBPS  Y0, Y11, Y11       // dx
	VSUBPS  Y1, Y12, Y12       // dy
	VMULPS  Y11, Y11, Y13
	VMULPS  Y2, Y13, Y13       // (dx*dx)*i11
	VADDPS  Y11, Y11, Y14      // 2*dx
	VMULPS  Y12, Y14, Y14
	VMULPS  Y4, Y14, Y14       // ((2*dx)*dy)*i12
	VADDPS  Y14, Y13, Y13
	VMULPS  Y12, Y12, Y14
	VMULPS  Y3, Y14, Y14       // (dy*dy)*i22
	VADDPS  Y14, Y13, Y13      // d2
	VCMPPS  $30, Y6, Y13, Y14  // mask = d2 > k2
	VMOVMSKPS Y14, AX
	TESTL   AX, AX
	JNE     loc8slow
	VADDPS  Y7, Y8, Y8         // sw += 1
	VMOVUPS (SI), Y11
	VADDPS  Y11, Y9, Y9        // sx += x
	VMOVUPS (DI), Y12
	VADDPS  Y12, Y10, Y10      // sy += y
	JMP     loc8next

loc8slow:
	VSQRTPS Y13, Y15
	VDIVPS  Y15, Y5, Y15       // k/sqrt(d2)
	VBLENDVPS Y14, Y15, Y7, Y15
	VADDPS  Y15, Y8, Y8
	VMOVUPS (SI), Y11
	VMULPS  Y11, Y15, Y11
	VADDPS  Y11, Y9, Y9
	VMOVUPS (DI), Y12
	VMULPS  Y12, Y15, Y12
	VADDPS  Y12, Y10, Y10

loc8next:
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loc8loop

loc8done:
	MOVQ sw+72(FP), AX
	VMOVUPS Y8, (AX)
	MOVQ sx+80(FP), AX
	VMOVUPS Y9, (AX)
	MOVQ sy+88(FP), AX
	VMOVUPS Y10, (AX)
	VZEROUPPER
	RET

// func maronnaScatter8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k2 float32, n11, n22, n12 *float32)
//
// 8-wide single-precision scatter. Like the scalar maronnaScatter32 it
// records no per-observation weights: the weights consumers see come
// from the float64 polish.
TEXT ·maronnaScatter8f(SB), NOSPLIT, $0-96
	MOVQ xt+0(FP), SI
	MOVQ yt+8(FP), DI
	MOVQ m+16(FP), CX
	MOVQ t1+24(FP), AX
	VMOVUPS (AX), Y0
	MOVQ t2+32(FP), AX
	VMOVUPS (AX), Y1
	MOVQ i11+40(FP), AX
	VMOVUPS (AX), Y2
	MOVQ i22+48(FP), AX
	VMOVUPS (AX), Y3
	MOVQ i12+56(FP), AX
	VMOVUPS (AX), Y4
	VBROADCASTSS k2+64(FP), Y6
	VBROADCASTSS one32<>(SB), Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	TESTQ CX, CX
	JZ   sca8done

sca8loop:
	VMOVUPS (SI), Y11
	VMOVUPS (DI), Y12
	VSUBPS  Y0, Y11, Y11       // dx
	VSUBPS  Y1, Y12, Y12       // dy
	VMULPS  Y11, Y11, Y13
	VMULPS  Y2, Y13, Y13
	VADDPS  Y11, Y11, Y14
	VMULPS  Y12, Y14, Y14
	VMULPS  Y4, Y14, Y14
	VADDPS  Y14, Y13, Y13
	VMULPS  Y12, Y12, Y14
	VMULPS  Y3, Y14, Y14
	VADDPS  Y14, Y13, Y13      // d2
	VCMPPS  $30, Y6, Y13, Y14
	VMOVMSKPS Y14, AX
	TESTL   AX, AX
	JNE     sca8slow
	VMULPS  Y11, Y11, Y15      // dx*dx
	VADDPS  Y15, Y8, Y8
	VMULPS  Y12, Y12, Y15      // dy*dy
	VADDPS  Y15, Y9, Y9
	VMULPS  Y12, Y11, Y15      // dx*dy
	VADDPS  Y15, Y10, Y10
	JMP     sca8next

sca8slow:
	VDIVPS  Y13, Y6, Y15       // k2/d2
	VBLENDVPS Y14, Y15, Y7, Y15
	VMULPS  Y11, Y15, Y14      // w*dx
	VMULPS  Y11, Y14, Y14      // (w*dx)*dx
	VADDPS  Y14, Y8, Y8
	VMULPS  Y12, Y15, Y14      // w*dy
	VMULPS  Y12, Y14, Y14
	VADDPS  Y14, Y9, Y9
	VMULPS  Y11, Y15, Y14      // w*dx
	VMULPS  Y12, Y14, Y14      // (w*dx)*dy
	VADDPS  Y14, Y10, Y10

sca8next:
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  sca8loop

sca8done:
	MOVQ n11+72(FP), AX
	VMOVUPS Y8, (AX)
	MOVQ n22+80(FP), AX
	VMOVUPS Y9, (AX)
	MOVQ n12+88(FP), AX
	VMOVUPS Y10, (AX)
	VZEROUPPER
	RET
