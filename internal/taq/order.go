package taq

// OrderChecker validates that a quote stream is time-ordered: the
// (Day, SeqTime) key must be non-decreasing. Both consumers of a quote
// stream care: the cleaning stage because its EWMA estimators assume
// chronological input, and the networked feed because a replayed or
// resumed stream that goes backwards in time indicates lost or
// reordered frames.
//
// The checker keeps the running maximum key rather than the last key,
// so a single early-timestamp glitch counts as one violation and does
// not cascade into flagging every subsequent (correctly ordered)
// quote. The zero value is ready to use; it is not safe for concurrent
// use.
type OrderChecker struct {
	started    bool
	maxDay     int
	maxTime    float64
	checked    int
	violations int
}

// Check reports whether q is in order relative to every quote seen so
// far, i.e. its (Day, SeqTime) is ≥ the running maximum. Out-of-order
// quotes are counted but do not advance the maximum.
func (c *OrderChecker) Check(q Quote) bool {
	c.checked++
	if !c.started {
		c.started = true
		c.maxDay, c.maxTime = q.Day, q.SeqTime
		return true
	}
	if q.Day < c.maxDay || (q.Day == c.maxDay && q.SeqTime < c.maxTime) {
		c.violations++
		return false
	}
	c.maxDay, c.maxTime = q.Day, q.SeqTime
	return true
}

// Checked returns the number of quotes examined.
func (c *OrderChecker) Checked() int { return c.checked }

// Violations returns the number of out-of-order quotes seen.
func (c *OrderChecker) Violations() int { return c.violations }

// Reset clears the checker to its zero state (e.g. at a day boundary
// when days are processed independently).
func (c *OrderChecker) Reset() { *c = OrderChecker{} }

// CheckOrdered counts out-of-order quotes in a slice.
func CheckOrdered(quotes []Quote) int {
	var c OrderChecker
	for _, q := range quotes {
		c.Check(q)
	}
	return c.Violations()
}

// IsOrdered reports whether the slice is (Day, SeqTime) non-decreasing.
func IsOrdered(quotes []Quote) bool { return CheckOrdered(quotes) == 0 }
