package taq

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuoteMidSpread(t *testing.T) {
	q := Quote{Bid: 10, Ask: 11}
	if q.Mid() != 10.5 {
		t.Errorf("Mid = %v", q.Mid())
	}
	if q.Spread() != 1 {
		t.Errorf("Spread = %v", q.Spread())
	}
	if q.Crossed() {
		t.Error("uncrossed quote reported crossed")
	}
	if !(Quote{Bid: 11, Ask: 10}).Crossed() {
		t.Error("crossed quote not detected")
	}
}

func TestQuoteValid(t *testing.T) {
	good := Quote{SeqTime: 100, Symbol: "IBM", Bid: 10, Ask: 10.1, BidSize: 1, AskSize: 1}
	if !good.Valid() {
		t.Error("good quote reported invalid")
	}
	cases := []Quote{
		{SeqTime: 100, Bid: 0, Ask: 10},      // zero bid
		{SeqTime: 100, Bid: 10, Ask: 0},      // zero ask
		{SeqTime: 100, Bid: 11, Ask: 10},     // crossed
		{SeqTime: -1, Bid: 10, Ask: 10.1},    // before open
		{SeqTime: 23400, Bid: 10, Ask: 10.1}, // after close
		{SeqTime: 100, Bid: 10, Ask: 10.1, BidSize: -1},
	}
	for i, q := range cases {
		if q.Valid() {
			t.Errorf("case %d: invalid quote reported valid: %+v", i, q)
		}
	}
}

func TestQuoteClock(t *testing.T) {
	q := Quote{SeqTime: 4}
	if got := q.Clock(); got != "09:30:04" {
		t.Errorf("Clock = %q, want 09:30:04", got)
	}
	q = Quote{SeqTime: 23399}
	if got := q.Clock(); got != "15:59:59" {
		t.Errorf("Clock = %q, want 15:59:59", got)
	}
}

func TestQuoteString(t *testing.T) {
	q := Quote{SeqTime: 4, Symbol: "NVDA", Bid: 16.38, Ask: 20.1, BidSize: 3, AskSize: 3}
	s := q.String()
	for _, want := range []string{"09:30:04", "NVDA", "16.38", "20.10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func sampleQuotes() []Quote {
	return []Quote{
		{Day: 0, SeqTime: 4, Symbol: "NVDA", Bid: 16.38, Ask: 20.1, BidSize: 3, AskSize: 3},
		{Day: 0, SeqTime: 4.5, Symbol: "ORCL", Bid: 19.56, Ask: 19.59, BidSize: 2, AskSize: 104},
		{Day: 1, SeqTime: 7200, Symbol: "BK", Bid: 41.11, Ask: 42.1, BidSize: 41, AskSize: 1},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range sampleQuotes() {
		if err := w.Write(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf, true)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleQuotes()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Symbol != want[i].Symbol || got[i].Day != want[i].Day ||
			got[i].BidSize != want[i].BidSize || got[i].AskSize != want[i].AskSize {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		if diff := got[i].Bid - want[i].Bid; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("record %d bid: got %v want %v", i, got[i].Bid, want[i].Bid)
		}
	}
}

func TestReaderStrictBadRecord(t *testing.T) {
	in := "day,seqtime,symbol,bid,ask,bidsize,asksize\n0,1.0,IBM,10,10.1,1,1\nGARBAGE LINE\n"
	r := NewReader(strings.NewReader(in), true)
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err := r.Read()
	var bad *ErrBadRecord
	if !errors.As(err, &bad) {
		t.Fatalf("want ErrBadRecord, got %v", err)
	}
	if bad.Line != 3 {
		t.Errorf("bad line = %d, want 3", bad.Line)
	}
	if bad.Unwrap() == nil {
		t.Error("Unwrap returned nil")
	}
}

func TestReaderLenientSkipsBadRecords(t *testing.T) {
	in := "day,seqtime,symbol,bid,ask,bidsize,asksize\n" +
		"0,1.0,IBM,10,10.1,1,1\n" +
		"not,a,valid,row\n" +
		"0,2.0,,10,10.1,1,1\n" + // empty symbol
		"0,x,IBM,10,10.1,1,1\n" + // bad seqtime
		"0,3.0,IBM,10,10.2,2,2\n"
	r := NewReader(strings.NewReader(in), false)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(got), got)
	}
	if got[1].SeqTime != 3.0 {
		t.Errorf("second record seqtime = %v", got[1].SeqTime)
	}
}

func TestReaderMissingHeader(t *testing.T) {
	r := NewReader(strings.NewReader("0,1.0,IBM,10,10.1,1,1\n"), true)
	_, err := r.Read()
	var bad *ErrBadRecord
	if !errors.As(err, &bad) || bad.Line != 1 {
		t.Fatalf("want header ErrBadRecord at line 1, got %v", err)
	}
}

func TestReaderEmptyStream(t *testing.T) {
	r := NewReader(strings.NewReader(""), true)
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestReaderBlankLinesIgnored(t *testing.T) {
	in := "day,seqtime,symbol,bid,ask,bidsize,asksize\n\n0,1.0,IBM,10,10.1,1,1\n\n"
	r := NewReader(strings.NewReader(in), true)
	got, err := r.ReadAll()
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d records, err %v", len(got), err)
	}
}

func TestUniverseBasics(t *testing.T) {
	u, err := NewUniverse([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d", u.Len())
	}
	if u.NumPairs() != 3 {
		t.Errorf("NumPairs = %d", u.NumPairs())
	}
	if i, ok := u.Index("B"); !ok || i != 1 {
		t.Errorf("Index(B) = %d,%v", i, ok)
	}
	if _, ok := u.Index("Z"); ok {
		t.Error("Index(Z) should not exist")
	}
	if u.Symbol(2) != "C" {
		t.Errorf("Symbol(2) = %q", u.Symbol(2))
	}
	syms := u.Symbols()
	syms[0] = "MUTATED"
	if u.Symbol(0) != "A" {
		t.Error("Symbols() must return a copy")
	}
}

func TestUniverseErrors(t *testing.T) {
	if _, err := NewUniverse([]string{"A", "A"}); err == nil {
		t.Error("duplicate symbols should error")
	}
	if _, err := NewUniverse([]string{"A", ""}); err == nil {
		t.Error("empty symbol should error")
	}
}

func TestDefaultUniverse61(t *testing.T) {
	u := DefaultUniverse()
	if u.Len() != 61 {
		t.Fatalf("default universe has %d symbols, want 61 (paper)", u.Len())
	}
	if u.NumPairs() != 1830 {
		t.Fatalf("NumPairs = %d, want 1830 (61 choose 2, paper)", u.NumPairs())
	}
}

func TestPairIDCanonicalOrder(t *testing.T) {
	n := 7
	pairs := AllPairs(n)
	if len(pairs) != n*(n-1)/2 {
		t.Fatalf("AllPairs(%d) length = %d", n, len(pairs))
	}
	for rank, p := range pairs {
		if p.I >= p.J {
			t.Errorf("pair %v not ordered", p)
		}
		if id := PairID(p.I, p.J, n); id != rank {
			t.Errorf("PairID(%d,%d,%d) = %d, want %d", p.I, p.J, n, id, rank)
		}
		// Symmetric argument order must give the same id.
		if id := PairID(p.J, p.I, n); id != rank {
			t.Errorf("PairID(%d,%d,%d) = %d, want %d", p.J, p.I, n, id, rank)
		}
	}
}

func TestPairIDBijectionProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 2
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				id := PairID(i, j, n)
				if id < 0 || id >= n*(n-1)/2 || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		n := rng.Intn(50) + 1
		in := make([]Quote, n)
		for i := range in {
			bid := 1 + rng.Float64()*500
			in[i] = Quote{
				Day:     rng.Intn(20),
				SeqTime: float64(rng.Intn(23400)),
				Symbol:  "S" + string(rune('A'+rng.Intn(26))),
				Bid:     bid,
				Ask:     bid + rng.Float64(),
				BidSize: rng.Intn(100),
				AskSize: rng.Intn(100),
			}
			if err := w.Write(in[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out, err := NewReader(&buf, true).ReadAll()
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i].Symbol != in[i].Symbol || out[i].Day != in[i].Day {
				return false
			}
			if d := out[i].Mid() - in[i].Mid(); d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairFromIDInvertsPairID(t *testing.T) {
	for _, n := range []int{2, 3, 7, 61} {
		for id := 0; id < n*(n-1)/2; id++ {
			p := PairFromID(id, n)
			if p.I >= p.J || p.J >= n {
				t.Fatalf("n=%d id=%d: bad pair %v", n, id, p)
			}
			if back := PairID(p.I, p.J, n); back != id {
				t.Fatalf("n=%d id=%d: round-trip gave %d", n, id, back)
			}
		}
	}
}

// TestReaderMalformedInputTable stress-tests the reader against the
// malformed-line species discovered while building the binary feed
// codec: truncated lines, extra fields, binary garbage, non-finite
// numbers, and embedded NULs. Every case is checked in both strict
// mode (must surface an ErrBadRecord) and lenient mode (must be
// skipped without aborting the stream).
func TestReaderMalformedInputTable(t *testing.T) {
	const goodLine = "0,5.0,IBM,10,10.1,1,1"
	cases := []struct {
		name string
		line string
	}{
		{"truncated-mid-field", "0,5.0,IBM,10,10."},
		{"truncated-few-fields", "0,5.0,IBM"},
		{"extra-field", goodLine + ",99"},
		{"binary-garbage", "\x00\x01\x02\xff\xfe,,,,,,"},
		{"embedded-nul-day", "\x000,5.0,IBM,10,10.1,1,1"},
		{"nan-bid", "0,5.0,IBM,NaN,10.1,1,1"},
		{"inf-ask", "0,5.0,IBM,10,+Inf,1,1"},
		{"neg-inf-seqtime", "0,-Inf,IBM,10,10.1,1,1"},
		{"float-sizes", "0,5.0,IBM,10,10.1,1.5,1"},
		{"hex-price", "0,5.0,IBM,0xDEAD,10.1,1,1"},
		{"overflow-day", "99999999999999999999,5.0,IBM,10,10.1,1,1"},
		{"empty-fields", ",,,,,,"},
		{"only-commas-8", ",,,,,,,"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := header + "\n" + goodLine + "\n" + tc.line + "\n" + goodLine + "\n"

			// Strict: the bad line must surface as ErrBadRecord at line 3.
			r := NewReader(strings.NewReader(in), true)
			if _, err := r.Read(); err != nil {
				t.Fatalf("strict: good record 1: %v", err)
			}
			_, err := r.Read()
			var bad *ErrBadRecord
			if !errors.As(err, &bad) {
				t.Fatalf("strict: want ErrBadRecord, got %v", err)
			}
			if bad.Line != 3 {
				t.Errorf("strict: bad line = %d, want 3", bad.Line)
			}

			// Lenient: the bad line is dropped, the stream survives.
			got, err := NewReader(strings.NewReader(in), false).ReadAll()
			if err != nil {
				t.Fatalf("lenient: %v", err)
			}
			if len(got) != 2 {
				t.Fatalf("lenient: got %d records, want 2", len(got))
			}
		})
	}
}

// TestReaderTruncatedStream checks that a stream cut off mid-line (a
// torn file tail or dropped connection) yields the intact prefix.
func TestReaderTruncatedStream(t *testing.T) {
	in := header + "\n0,1.0,IBM,10,10.1,1,1\n0,2.0,IBM,10,10"
	got, err := NewReader(strings.NewReader(in), false).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SeqTime != 1.0 {
		t.Fatalf("got %+v, want the single intact record", got)
	}
}

func TestPairFromIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range id")
		}
	}()
	PairFromID(3, 3) // n=3 has ids 0..2
}

func TestSyntheticSymbols(t *testing.T) {
	if got := SyntheticSymbols(5); len(got) != 5 || got[0] != DefaultSymbols()[0] {
		t.Fatalf("small universe should prefix the default tickers: %v", got)
	}
	syms := SyntheticSymbols(200)
	if len(syms) != 200 {
		t.Fatalf("len = %d, want 200", len(syms))
	}
	if syms[60] != DefaultSymbols()[60] || syms[61] != "S0061" || syms[199] != "S0199" {
		t.Fatalf("synthetic tail malformed: %q %q %q", syms[60], syms[61], syms[199])
	}
	seen := make(map[string]bool, len(syms))
	for _, s := range syms {
		if seen[s] {
			t.Fatalf("duplicate symbol %q", s)
		}
		seen[s] = true
	}
	// Determinism in n: a larger universe extends, never reshuffles.
	big := SyntheticSymbols(400)
	for i, s := range syms {
		if big[i] != s {
			t.Fatalf("universe not prefix-stable at %d: %q vs %q", i, s, big[i])
		}
	}
}
