package taq

import (
	"testing"
	"testing/quick"
)

func q(day int, t float64) Quote {
	return Quote{Day: day, SeqTime: t, Symbol: "X", Bid: 10, Ask: 10.1, BidSize: 1, AskSize: 1}
}

func TestOrderCheckerMonotonic(t *testing.T) {
	var c OrderChecker
	for i, quote := range []Quote{q(0, 1), q(0, 1), q(0, 2.5), q(1, 0), q(1, 3)} {
		if !c.Check(quote) {
			t.Errorf("quote %d flagged out of order", i)
		}
	}
	if c.Violations() != 0 || c.Checked() != 5 {
		t.Errorf("violations=%d checked=%d", c.Violations(), c.Checked())
	}
}

func TestOrderCheckerFlagsRegressions(t *testing.T) {
	var c OrderChecker
	c.Check(q(0, 100))
	if c.Check(q(0, 50)) {
		t.Error("time regression not flagged")
	}
	if c.Check(q(0, -1)) {
		t.Error("second regression not flagged")
	}
	// Running-max semantics: a glitch must not cascade.
	if !c.Check(q(0, 100)) {
		t.Error("quote at the running max flagged")
	}
	c.Check(q(1, 0))
	if c.Check(q(0, 500)) {
		t.Error("day regression not flagged")
	}
	if c.Violations() != 3 {
		t.Errorf("violations = %d, want 3", c.Violations())
	}
}

func TestOrderCheckerSingleGlitchCountsOnce(t *testing.T) {
	// One early-timestamp glitch inside an otherwise sorted stream
	// produces exactly one violation.
	quotes := []Quote{q(0, 1), q(0, 2), q(0, 0.5), q(0, 3), q(0, 4)}
	if v := CheckOrdered(quotes); v != 1 {
		t.Errorf("violations = %d, want 1", v)
	}
	if IsOrdered(quotes) {
		t.Error("IsOrdered = true for glitched stream")
	}
}

func TestOrderCheckerReset(t *testing.T) {
	var c OrderChecker
	c.Check(q(5, 1000))
	c.Reset()
	if !c.Check(q(0, 0)) {
		t.Error("post-Reset quote flagged")
	}
	if c.Checked() != 1 || c.Violations() != 0 {
		t.Errorf("Reset did not clear counters: %d/%d", c.Checked(), c.Violations())
	}
}

func TestIsOrderedEmptyAndSingle(t *testing.T) {
	if !IsOrdered(nil) {
		t.Error("empty stream should be ordered")
	}
	if !IsOrdered([]Quote{q(3, 7)}) {
		t.Error("single quote should be ordered")
	}
}

// TestOrderCheckerSortedProperty: any stream sorted by (Day, SeqTime)
// passes with zero violations.
func TestOrderCheckerSortedProperty(t *testing.T) {
	f := func(times []float64, days []uint8) bool {
		n := len(times)
		if len(days) < n {
			n = len(days)
		}
		quotes := make([]Quote, 0, n)
		day, tm := 0, 0.0
		for i := 0; i < n; i++ {
			// Build a sorted stream by accumulating non-negative steps.
			day += int(days[i] % 2)
			step := times[i]
			if step < 0 {
				step = -step
			}
			if days[i]%2 == 1 {
				tm = 0
			}
			tm += step
			quotes = append(quotes, q(day, tm))
		}
		return IsOrdered(quotes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
