// Package taq defines the Trade-and-Quote (TAQ) data model used by the
// MarketMiner reproduction, plus streaming CSV readers and writers.
//
// The paper's raw input is NYSE TAQ quote data (Table II): timestamped
// bid/ask prices and sizes per symbol. A single day of uncompressed TAQ
// is ~50 GB, so the reader is strictly streaming: records are decoded
// one at a time and handed to the caller, never accumulated.
package taq

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// MarketOpen and MarketClose delimit a regular US equities trading day;
// the paper's time grid spans the 23400 seconds between them.
const (
	MarketOpen    = 9*time.Hour + 30*time.Minute // 09:30:00
	MarketClose   = 16 * time.Hour               // 16:00:00
	TradingDaySec = 23400                        // seconds between open and close
)

// Quote is one TAQ quote record, mirroring the columns of Table II.
// SeqTime is seconds since market open (0 .. 23399), which is the
// native resolution of the paper's dataset.
type Quote struct {
	Day     int     // trading-day index within the dataset (0-based)
	SeqTime float64 // seconds since 09:30:00
	Symbol  string
	Bid     float64
	Ask     float64
	BidSize int
	AskSize int
}

// Mid returns the bid-ask midpoint (BAM), the paper's price proxy:
// "we use the bid-ask midpoint (BAM) as an approximation to the stock
// price".
func (q Quote) Mid() float64 { return (q.Bid + q.Ask) / 2 }

// Spread returns the quoted bid-ask spread.
func (q Quote) Spread() float64 { return q.Ask - q.Bid }

// Crossed reports whether the quote is crossed (bid > ask), which is
// one of the error conditions the cleaning stage rejects.
func (q Quote) Crossed() bool { return q.Bid > q.Ask }

// Valid performs basic structural validation: positive prices and
// sizes, uncrossed market, in-session timestamp.
func (q Quote) Valid() bool {
	return q.Bid > 0 && q.Ask > 0 && !q.Crossed() &&
		q.BidSize >= 0 && q.AskSize >= 0 &&
		q.SeqTime >= 0 && q.SeqTime < TradingDaySec
}

// Clock formats SeqTime as a wall-clock HH:MM:SS string (Table II
// style), assuming a 09:30 open.
func (q Quote) Clock() string {
	t := MarketOpen + time.Duration(q.SeqTime*float64(time.Second))
	h := int(t.Hours())
	m := int(t.Minutes()) % 60
	s := int(t.Seconds()) % 60
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// String renders the quote as a Table II row.
func (q Quote) String() string {
	return fmt.Sprintf("%s %-6s bid=%.2f ask=%.2f bsz=%d asz=%d",
		q.Clock(), q.Symbol, q.Bid, q.Ask, q.BidSize, q.AskSize)
}

// header is the canonical CSV header written and expected by this
// package.
const header = "day,seqtime,symbol,bid,ask,bidsize,asksize"

// Writer streams quotes to an io.Writer in CSV form. It buffers
// internally; callers must call Flush (or Close via the caller's file)
// when done.
type Writer struct {
	bw      *bufio.Writer
	wrote   int
	started bool
}

// NewWriter returns a Writer emitting the canonical CSV schema to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one quote record.
func (w *Writer) Write(q Quote) error {
	if !w.started {
		if _, err := w.bw.WriteString(header + "\n"); err != nil {
			return err
		}
		w.started = true
	}
	_, err := fmt.Fprintf(w.bw, "%d,%.3f,%s,%.4f,%.4f,%d,%d\n",
		q.Day, q.SeqTime, q.Symbol, q.Bid, q.Ask, q.BidSize, q.AskSize)
	if err == nil {
		w.wrote++
	}
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.wrote }

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// ErrBadRecord wraps a malformed CSV line with its line number.
type ErrBadRecord struct {
	Line int
	Err  error
}

func (e *ErrBadRecord) Error() string {
	return fmt.Sprintf("taq: bad record at line %d: %v", e.Line, e.Err)
}

func (e *ErrBadRecord) Unwrap() error { return e.Err }

// Reader streams quotes from CSV produced by Writer. It tolerates and
// reports malformed lines individually so that one corrupt record does
// not abort a 50 GB scan — mirroring the paper's observation that raw
// TAQ contains transmission and typing errors.
type Reader struct {
	sc     *bufio.Scanner
	line   int
	strict bool
}

// NewReader wraps r. If strict is true, malformed records are returned
// as errors; otherwise they are silently skipped (the count is
// available via Skipped).
func NewReader(r io.Reader, strict bool) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{sc: sc, strict: strict}
}

var errHeader = errors.New("missing or malformed header")

// Read returns the next quote, io.EOF at end of stream, or an
// *ErrBadRecord in strict mode.
func (r *Reader) Read() (Quote, error) {
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" {
			continue
		}
		if r.line == 1 {
			if text != header {
				return Quote{}, &ErrBadRecord{Line: 1, Err: errHeader}
			}
			continue
		}
		q, err := parseLine(text)
		if err != nil {
			if r.strict {
				return Quote{}, &ErrBadRecord{Line: r.line, Err: err}
			}
			continue
		}
		return q, nil
	}
	if err := r.sc.Err(); err != nil {
		return Quote{}, err
	}
	return Quote{}, io.EOF
}

// ReadAll drains the stream into a slice. Intended for tests and small
// samples only; production paths should loop over Read.
func (r *Reader) ReadAll() ([]Quote, error) {
	var out []Quote
	for {
		q, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, q)
	}
}

func parseLine(text string) (Quote, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 7 {
		return Quote{}, fmt.Errorf("want 7 fields, got %d", len(fields))
	}
	var q Quote
	var err error
	if q.Day, err = strconv.Atoi(fields[0]); err != nil {
		return Quote{}, fmt.Errorf("day: %w", err)
	}
	if q.SeqTime, err = parseFinite(fields[1]); err != nil {
		return Quote{}, fmt.Errorf("seqtime: %w", err)
	}
	q.Symbol = fields[2]
	if q.Symbol == "" {
		return Quote{}, errors.New("empty symbol")
	}
	if q.Bid, err = parseFinite(fields[3]); err != nil {
		return Quote{}, fmt.Errorf("bid: %w", err)
	}
	if q.Ask, err = parseFinite(fields[4]); err != nil {
		return Quote{}, fmt.Errorf("ask: %w", err)
	}
	if q.BidSize, err = strconv.Atoi(fields[5]); err != nil {
		return Quote{}, fmt.Errorf("bidsize: %w", err)
	}
	if q.AskSize, err = strconv.Atoi(fields[6]); err != nil {
		return Quote{}, fmt.Errorf("asksize: %w", err)
	}
	return q, nil
}

// parseFinite parses a float and rejects NaN/±Inf: strconv accepts the
// literals "NaN" and "Inf", but a non-finite price or timestamp would
// silently poison every downstream EWMA and correlation window.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// Universe is an ordered set of symbols with O(1) index lookup. The
// correlation engine addresses stocks by dense integer index; Universe
// is the symbol↔index mapping shared across the system.
type Universe struct {
	symbols []string
	index   map[string]int
}

// NewUniverse builds a universe from symbols, preserving order and
// rejecting duplicates or empty names.
func NewUniverse(symbols []string) (*Universe, error) {
	u := &Universe{index: make(map[string]int, len(symbols))}
	for _, s := range symbols {
		if s == "" {
			return nil, errors.New("taq: empty symbol in universe")
		}
		if _, dup := u.index[s]; dup {
			return nil, fmt.Errorf("taq: duplicate symbol %q", s)
		}
		u.index[s] = len(u.symbols)
		u.symbols = append(u.symbols, s)
	}
	return u, nil
}

// Len returns the number of symbols.
func (u *Universe) Len() int { return len(u.symbols) }

// Symbol returns the symbol at index i.
func (u *Universe) Symbol(i int) string { return u.symbols[i] }

// Symbols returns a copy of the ordered symbol list.
func (u *Universe) Symbols() []string {
	return append([]string(nil), u.symbols...)
}

// Index returns the dense index of symbol s and whether it exists.
func (u *Universe) Index(s string) (int, bool) {
	i, ok := u.index[s]
	return i, ok
}

// NumPairs returns n(n-1)/2, the number of unordered pairs — the
// quantity the paper stresses ("8000 stocks … over 32 million pairs").
func (u *Universe) NumPairs() int {
	n := len(u.symbols)
	return n * (n - 1) / 2
}

// Pair identifies an unordered stock pair by dense universe indices,
// with I < J by construction.
type Pair struct {
	I, J int
}

// PairID maps a pair to its canonical rank in the lexicographic
// enumeration of all pairs of an n-symbol universe, i.e. the row-major
// position of (i,j), i<j in the strictly-upper-triangular matrix.
func PairID(i, j, n int) int {
	if i > j {
		i, j = j, i
	}
	return i*n - i*(i+1)/2 + (j - i - 1)
}

// PairFromID inverts PairID: it returns the (i, j) pair at canonical
// rank id in an n-symbol universe. It panics if id is out of range —
// pair ids come from this package's own enumeration, so that is a
// programming error.
func PairFromID(id, n int) Pair {
	if id < 0 || id >= n*(n-1)/2 {
		panic(fmt.Sprintf("taq: pair id %d out of range for n=%d", id, n))
	}
	// Row i starts at offset i*n - i*(i+1)/2 - i... solve by scan:
	// rows shrink from n-1 to 1, so the loop runs at most n-1 times.
	row := 0
	rem := id
	for size := n - 1; rem >= size; size-- {
		rem -= size
		row++
	}
	return Pair{I: row, J: row + 1 + rem}
}

// AllPairs enumerates every unordered pair of an n-symbol universe in
// canonical (PairID) order.
func AllPairs(n int) []Pair {
	out := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Pair{I: i, J: j})
		}
	}
	return out
}

// DefaultUniverse returns the 61-symbol universe used throughout the
// reproduction, standing in for the paper's "61 highly liquid US stocks
// frequently traded by professional pair traders". The tickers are
// large-cap US names (2008 era); only the count and liquidity tiering
// matter to the experiments.
func DefaultUniverse() *Universe {
	u, err := NewUniverse(DefaultSymbols())
	if err != nil {
		panic("taq: default universe invalid: " + err.Error())
	}
	return u
}

// DefaultSymbols returns the 61 tickers of DefaultUniverse.
func DefaultSymbols() []string {
	return []string{
		"AAPL", "MSFT", "IBM", "ORCL", "INTC", "CSCO", "HPQ", "DELL",
		"NVDA", "TXN", "QCOM", "EMC", "XOM", "CVX", "COP", "SLB",
		"HAL", "OXY", "VLO", "JPM", "BAC", "C", "WFC", "GS",
		"MS", "MER", "AXP", "BK", "USB", "WMT", "TGT", "COST",
		"HD", "LOW", "MCD", "KO", "PEP", "PG", "JNJ", "PFE",
		"MRK", "ABT", "BMY", "LLY", "AMGN", "UPS", "FDX", "GE",
		"BA", "CAT", "MMM", "HON", "UTX", "T", "VZ", "TWX",
		"DIS", "CMCSA", "F", "GM", "X",
	}
}

// SyntheticSymbols returns a deterministic n-symbol universe for
// scaling experiments past the paper's 61 names: the first
// min(n, 61) are the default tickers, the remainder synthetic
// "S0061".."S9999"-style names. Symbols depend only on n, so two
// processes given the same count agree on the universe (and therefore
// on every pair id).
func SyntheticSymbols(n int) []string {
	defaults := DefaultSymbols()
	if n <= len(defaults) {
		return defaults[:n]
	}
	syms := make([]string, n)
	copy(syms, defaults)
	for i := len(defaults); i < n; i++ {
		syms[i] = fmt.Sprintf("S%04d", i)
	}
	return syms
}
