package stats

import "math"

// This file provides the distributional diagnostics behind §III's
// modelling assumptions: log-returns are used "in order to utilize
// statistics which assume stationarity and normality", and Tables
// III–V report skewness/kurtosis precisely because the return
// populations are *not* normal. JarqueBera quantifies that departure;
// Autocorrelation quantifies departures from the i.i.d. assumption the
// sliding-window correlations rely on.

// JarqueBera returns the Jarque–Bera statistic of xs,
// JB = n/6·(S² + (K−3)²/4), where S is the sample skewness and K the
// (non-excess) kurtosis. Under normality JB is asymptotically χ²(2);
// values far above ~6 reject normality at the 5% level. Returns 0 for
// samples of size < 4 or zero variance.
func JarqueBera(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	s := Skewness(xs)
	k := Kurtosis(xs)
	if s == 0 && k == 0 {
		return 0
	}
	return n / 6 * (s*s + (k-3)*(k-3)/4)
}

// JarqueBeraNormal reports whether xs is consistent with normality at
// the 5% level (JB < 5.99, the χ²(2) critical value).
func JarqueBeraNormal(xs []float64) bool {
	return JarqueBera(xs) < 5.991464547107979
}

// Autocorrelation returns the lag-k sample autocorrelation of xs,
// using the biased (n-denominator) estimator standard in time-series
// practice. It returns 0 when the lag is out of range or the variance
// is zero.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := lag; i < n; i++ {
		num += (xs[i] - m) * (xs[i-lag] - m)
	}
	return num / den
}

// LjungBox returns the Ljung–Box Q statistic over the first maxLag
// autocorrelations, Q = n(n+2)·Σ_{k=1..L} ρ̂_k²/(n−k). Under the null
// of no autocorrelation Q is asymptotically χ²(L). Returns 0 for
// samples shorter than maxLag+2.
func LjungBox(xs []float64, maxLag int) float64 {
	n := len(xs)
	if maxLag < 1 || n < maxLag+2 {
		return 0
	}
	fn := float64(n)
	var q float64
	for k := 1; k <= maxLag; k++ {
		r := Autocorrelation(xs, k)
		q += r * r / (fn - float64(k))
	}
	return fn * (fn + 2) * q
}

// HalfLife converts a lag-1 autocorrelation ρ of an AR(1)/OU process
// into its mean-reversion half-life in steps, ln(0.5)/ln(ρ). It
// returns +Inf for ρ ≥ 1 and 0 for ρ ≤ 0 — spreads with no positive
// persistence have no meaningful half-life.
func HalfLife(rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 {
		return 0
	}
	return math.Log(0.5) / math.Log(rho)
}
