package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, -0.5, 2}); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample variance is 32/7.
	approx(t, PopVariance(xs), 4, 1e-12, "PopVariance")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "StdDev")
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance of empty should be 0")
	}
	if PopVariance(nil) != 0 {
		t.Error("PopVariance of empty should be 0")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
		{nil, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	approx(t, Skewness(xs), 0, 1e-12, "Skewness(symmetric)")
}

func TestSkewnessRight(t *testing.T) {
	// Right-skewed sample: long tail to the right → positive skewness.
	xs := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	if s := Skewness(xs); s <= 0 {
		t.Errorf("Skewness of right-skewed sample = %v, want > 0", s)
	}
}

func TestSkewnessDegenerate(t *testing.T) {
	if Skewness([]float64{1, 2}) != 0 {
		t.Error("Skewness of n<3 should be 0")
	}
	if Skewness([]float64{5, 5, 5, 5}) != 0 {
		t.Error("Skewness of constant sample should be 0")
	}
}

func TestKurtosisNormalish(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// Fourth standardized moment of a normal is 3.
	approx(t, Kurtosis(xs), 3, 0.1, "Kurtosis(normal)")
}

func TestKurtosisDegenerate(t *testing.T) {
	if Kurtosis([]float64{1}) != 0 {
		t.Error("Kurtosis of n<2 should be 0")
	}
	if Kurtosis([]float64{2, 2, 2}) != 0 {
		t.Error("Kurtosis of constant sample should be 0")
	}
}

func TestKurtosisFatTails(t *testing.T) {
	// A sample with extreme outliers has kurtosis far above 3.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i%3) - 1
	}
	xs[0] = 50
	xs[1] = -50
	if k := Kurtosis(xs); k < 10 {
		t.Errorf("Kurtosis with outliers = %v, want ≫ 3", k)
	}
}

func TestSharpeRatio(t *testing.T) {
	xs := []float64{0.01, 0.02, 0.03}
	want := Mean(xs) / StdDev(xs)
	approx(t, SharpeRatio(xs), want, 1e-12, "SharpeRatio")
	if !math.IsInf(SharpeRatio([]float64{1, 1}), 1) {
		t.Error("SharpeRatio of constant positive sample should be +Inf")
	}
	if !math.IsInf(SharpeRatio([]float64{-1, -1}), -1) {
		t.Error("SharpeRatio of constant negative sample should be -Inf")
	}
	if SharpeRatio([]float64{0, 0}) != 0 {
		t.Error("SharpeRatio of zeros should be 0")
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 3}
	q0, err := Quantile(xs, 0)
	if err != nil || q0 != 1 {
		t.Errorf("Quantile(0) = %v, %v; want 1", q0, err)
	}
	q1, err := Quantile(xs, 1)
	if err != nil || q1 != 5 {
		t.Errorf("Quantile(1) = %v, %v; want 5", q1, err)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// Type-7: h = q*(n-1); q=0.5 → h=1.5 → 2.5
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q, 2.5, 1e-12, "Quantile(0.5)")
	q25, _ := Quantile(xs, 0.25)
	approx(t, q25, 1.75, 1e-12, "Quantile(0.25)")
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("expected error for q<0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("expected error for q>1")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("expected error for NaN q")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestDescribeSample(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d := DescribeSample(xs)
	if d.N != 5 {
		t.Errorf("N = %d", d.N)
	}
	approx(t, d.Mean, 3, 1e-12, "Describe.Mean")
	approx(t, d.Median, 3, 1e-12, "Describe.Median")
	approx(t, d.Min, 1, 1e-12, "Describe.Min")
	approx(t, d.Max, 5, 1e-12, "Describe.Max")
	if d.Sharpe <= 0 {
		t.Errorf("Sharpe = %v, want > 0", d.Sharpe)
	}
}

func TestBoxPlotBasic(t *testing.T) {
	// 1..11 with one extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	bp, err := BoxPlotStats(xs)
	if err != nil {
		t.Fatal(err)
	}
	if bp.N != 12 {
		t.Errorf("N = %d", bp.N)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", bp.Outliers)
	}
	if bp.NumHigh != 1 || bp.NumLow != 0 {
		t.Errorf("NumHigh=%d NumLow=%d", bp.NumHigh, bp.NumLow)
	}
	if bp.WhiskerHigh != 11 {
		t.Errorf("WhiskerHigh = %v, want 11", bp.WhiskerHigh)
	}
	if bp.WhiskerLow != 1 {
		t.Errorf("WhiskerLow = %v, want 1", bp.WhiskerLow)
	}
	if bp.Q1 > bp.Median || bp.Median > bp.Q3 {
		t.Errorf("quartile ordering violated: %v %v %v", bp.Q1, bp.Median, bp.Q3)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if _, err := BoxPlotStats(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestBoxPlotConstant(t *testing.T) {
	bp, err := BoxPlotStats([]float64{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Median != 4 || bp.Q1 != 4 || bp.Q3 != 4 || len(bp.Outliers) != 0 {
		t.Errorf("constant boxplot wrong: %+v", bp)
	}
	if bp.WhiskerLow != 4 || bp.WhiskerHigh != 4 {
		t.Errorf("whiskers = %v,%v", bp.WhiskerLow, bp.WhiskerHigh)
	}
}

func TestBoxPlotInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Clamp magnitude so sums do not overflow.
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		bp, err := BoxPlotStats(xs)
		if err != nil {
			return false
		}
		if bp.Q1 > bp.Median || bp.Median > bp.Q3 {
			return false
		}
		if bp.WhiskerLow > bp.WhiskerHigh {
			return false
		}
		if len(bp.Outliers) != bp.NumLow+bp.NumHigh {
			return false
		}
		return bp.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	approx(t, w.Mean(), Mean(xs), 1e-9, "Welford.Mean")
	approx(t, w.Variance(), Variance(xs), 1e-9, "Welford.Variance")
	approx(t, w.StdDev(), StdDev(xs), 1e-9, "Welford.StdDev")
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Error("Reset did not clear accumulator")
	}
}

func TestRollingMomentsWindowing(t *testing.T) {
	r := NewRollingMoments(3)
	for _, x := range []float64{1, 2, 3} {
		r.Add(x)
	}
	approx(t, r.Mean(), 2, 1e-12, "RollingMoments.Mean full")
	if !r.Full() {
		t.Error("window should be full")
	}
	r.Add(4) // evicts 1 → window {2,3,4}
	approx(t, r.Mean(), 3, 1e-12, "RollingMoments.Mean after evict")
	approx(t, r.Variance(), 1, 1e-12, "RollingMoments.Variance after evict")
}

func TestRollingMomentsPartial(t *testing.T) {
	r := NewRollingMoments(5)
	r.Add(10)
	if r.N() != 1 || r.Full() {
		t.Errorf("N=%d Full=%v", r.N(), r.Full())
	}
	approx(t, r.Mean(), 10, 1e-12, "partial mean")
	if r.Variance() != 0 {
		t.Error("variance of single value should be 0")
	}
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Error("Reset failed")
	}
}

func TestRollingMomentsMatchesBatchProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		r := NewRollingMoments(size)
		window := make([]float64, 0, size)
		for i := 0; i < 100; i++ {
			x := rng.NormFloat64() * 100
			r.Add(x)
			window = append(window, x)
			if len(window) > size {
				window = window[1:]
			}
			if math.Abs(r.Mean()-Mean(window)) > 1e-6 {
				return false
			}
			if math.Abs(r.Variance()-Variance(window)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRollingMomentsSizeClamp(t *testing.T) {
	r := NewRollingMoments(0)
	r.Add(1)
	r.Add(2)
	if r.N() != 1 {
		t.Errorf("size-0 window should clamp to 1, N=%d", r.N())
	}
	approx(t, r.Mean(), 2, 1e-12, "clamped window mean")
}

func TestQuantileSortedMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		sort.Float64s(xs)
		va := quantileSorted(xs, qa)
		vb := quantileSorted(xs, qb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
