package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestJarqueBeraNormalSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	jb := JarqueBera(xs)
	if jb > 8 {
		t.Errorf("JB of normal sample = %v, want small", jb)
	}
	if !JarqueBeraNormal(xs) && jb >= 5.99 {
		t.Logf("borderline JB = %v", jb) // tolerated: 5%-level test
	}
}

func TestJarqueBeraRejectsFatTails(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		if i%50 == 0 {
			xs[i] *= 10 // heavy contamination
		}
	}
	if JarqueBeraNormal(xs) {
		t.Errorf("JB = %v failed to reject heavy-tailed sample", JarqueBera(xs))
	}
}

func TestJarqueBeraDegenerate(t *testing.T) {
	if JarqueBera([]float64{1, 2, 3}) != 0 {
		t.Error("n<4 should give 0")
	}
	if JarqueBera([]float64{5, 5, 5, 5}) != 0 {
		t.Error("constant sample should give 0")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, lag := range []int{1, 5, 20} {
		if r := Autocorrelation(xs, lag); math.Abs(r) > 0.03 {
			t.Errorf("white-noise ACF(%d) = %v, want ≈0", lag, r)
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const rho = 0.8
	xs := make([]float64, 50000)
	for i := 1; i < len(xs); i++ {
		xs[i] = rho*xs[i-1] + rng.NormFloat64()
	}
	if r := Autocorrelation(xs, 1); math.Abs(r-rho) > 0.02 {
		t.Errorf("AR(1) ACF(1) = %v, want %v", r, rho)
	}
	// ACF(2) ≈ ρ².
	if r := Autocorrelation(xs, 2); math.Abs(r-rho*rho) > 0.03 {
		t.Errorf("AR(1) ACF(2) = %v, want %v", r, rho*rho)
	}
}

func TestAutocorrelationEdges(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, 3) != 0 || Autocorrelation(xs, -1) != 0 {
		t.Error("out-of-range lags should give 0")
	}
	if Autocorrelation([]float64{2, 2, 2}, 1) != 0 {
		t.Error("constant series should give 0")
	}
}

func TestLjungBox(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	white := make([]float64, 2000)
	for i := range white {
		white[i] = rng.NormFloat64()
	}
	// χ²(10) 95th percentile ≈ 18.3; allow generous headroom.
	if q := LjungBox(white, 10); q > 30 {
		t.Errorf("Ljung-Box on white noise = %v, want small", q)
	}
	ar := make([]float64, 2000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.6*ar[i-1] + rng.NormFloat64()
	}
	if q := LjungBox(ar, 10); q < 100 {
		t.Errorf("Ljung-Box on AR(1) = %v, want large", q)
	}
	if LjungBox(white, 0) != 0 || LjungBox(white[:5], 10) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestHalfLife(t *testing.T) {
	if hl := HalfLife(0.5); math.Abs(hl-1) > 1e-12 {
		t.Errorf("HalfLife(0.5) = %v, want 1", hl)
	}
	if !math.IsInf(HalfLife(1), 1) {
		t.Error("ρ=1 should give +Inf")
	}
	if HalfLife(0) != 0 || HalfLife(-0.3) != 0 {
		t.Error("ρ≤0 should give 0")
	}
	// ρ = 0.9 → half-life ≈ 6.58 steps.
	if hl := HalfLife(0.9); math.Abs(hl-6.58) > 0.01 {
		t.Errorf("HalfLife(0.9) = %v", hl)
	}
}
