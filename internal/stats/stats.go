// Package stats provides the descriptive statistics used throughout the
// MarketMiner pair-trading reproduction: central moments, robust order
// statistics, box-plot summaries (Figure 2 of the paper) and streaming
// (Welford) accumulators used by the online cleaning filter.
//
// All functions operate on float64 slices and are allocation-free unless
// documented otherwise. NaN handling follows the rule "garbage in,
// garbage out": callers are expected to clean inputs first (the paper
// cleans ticks before any statistics are computed).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n) variance of xs, 0 if empty.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it.
// It returns 0 for an empty sample.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Skewness returns the sample skewness (adjusted Fisher–Pearson, the
// g1 estimator scaled for bias) of xs. The paper reports skewness of the
// per-pair averaged performance measures (Tables III–V). Returns 0 for
// samples of size < 3 or zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// Kurtosis returns the (non-excess) sample kurtosis of xs, i.e. the
// fourth standardized moment; a normal distribution has kurtosis 3,
// matching the convention in the paper's Tables III–V (values near 3
// for the win–loss ratio). Returns 0 for samples of size < 2 or zero
// variance.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}

// SharpeRatio returns r̄/σ̂ as defined in Section V of the paper
// (SR = r̄ / sqrt(σ̂²)), where r̄ is the mean and σ̂² the sample variance
// of the returns. It returns +Inf when the variance is zero and the
// mean positive, -Inf when negative, and 0 when both are zero.
func SharpeRatio(returns []float64) float64 {
	m := Mean(returns)
	sd := StdDev(returns)
	if sd == 0 {
		switch {
		case m > 0:
			return math.Inf(1)
		case m < 0:
			return math.Inf(-1)
		default:
			return 0
		}
	}
	return m / sd
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the Matlab/R default,
// matching the environment the paper's box plots were produced in).
// It returns an error for an empty sample or out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q), nil
}

// quantileSorted computes a type-7 quantile over an already-sorted
// sample.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It returns an error for
// an empty sample.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Describe bundles the descriptive statistics reported in Tables III–V
// of the paper for one population (one correlation type).
type Describe struct {
	N        int
	Mean     float64
	Median   float64
	StdDev   float64
	Sharpe   float64 // mean / stddev, Section V definition
	Skewness float64
	Kurtosis float64
	Min      float64
	Max      float64
}

// DescribeSample computes the Table III–V row statistics for xs.
func DescribeSample(xs []float64) Describe {
	d := Describe{
		N:        len(xs),
		Mean:     Mean(xs),
		Median:   Median(xs),
		StdDev:   StdDev(xs),
		Sharpe:   SharpeRatio(xs),
		Skewness: Skewness(xs),
		Kurtosis: Kurtosis(xs),
	}
	if len(xs) > 0 {
		d.Min, d.Max, _ = MinMax(xs)
	}
	return d
}

// BoxPlot holds the five-number summary plus outliers, exactly the
// information rendered in Figure 2 of the paper: "the central mark is
// the median, the edges of the box are the 25th and 75th percentiles,
// the whiskers extend to the most extreme data points not considered
// outliers, and outliers are plotted individually".
type BoxPlot struct {
	Median      float64
	Q1, Q3      float64
	IQR         float64
	WhiskerLow  float64 // most extreme datum ≥ Q1 - 1.5·IQR
	WhiskerHigh float64 // most extreme datum ≤ Q3 + 1.5·IQR
	Outliers    []float64
	NumLow      int // outliers below the low whisker
	NumHigh     int // outliers above the high whisker
	N           int
}

// BoxPlotStats computes the Figure-2 box-plot summary of xs using the
// standard 1.5·IQR whisker rule (Matlab's boxplot default). It returns
// an error for an empty sample.
func BoxPlotStats(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	bp := BoxPlot{N: len(cp)}
	bp.Median = quantileSorted(cp, 0.5)
	bp.Q1 = quantileSorted(cp, 0.25)
	bp.Q3 = quantileSorted(cp, 0.75)
	bp.IQR = bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*bp.IQR
	hiFence := bp.Q3 + 1.5*bp.IQR
	bp.WhiskerLow = bp.Q3
	bp.WhiskerHigh = bp.Q1
	first := true
	for _, x := range cp {
		if x < loFence {
			bp.Outliers = append(bp.Outliers, x)
			bp.NumLow++
			continue
		}
		if x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
			bp.NumHigh++
			continue
		}
		if first {
			bp.WhiskerLow = x
			first = false
		}
		bp.WhiskerHigh = x
	}
	if first {
		// Degenerate: every point is an outlier (cannot happen with
		// the 1.5·IQR rule since the quartiles themselves are within
		// the fences, but keep the invariant explicit).
		bp.WhiskerLow = bp.Median
		bp.WhiskerHigh = bp.Median
	}
	return bp, nil
}

// Welford is a streaming accumulator for mean and variance using
// Welford's algorithm. It backs the online tick-cleaning filter, which
// must maintain a running mean/deviation without storing the window.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// RollingMoments maintains mean and standard deviation over a
// fixed-size sliding window in O(1) per update. It is used by the
// TCP-like cleaning filter (§III) whose acceptance band is
// mean ± k·stddev over a trailing window of observations.
type RollingMoments struct {
	buf  []float64
	head int
	full bool
	sum  float64
	sum2 float64
}

// NewRollingMoments returns a window of the given size (size ≥ 1).
func NewRollingMoments(size int) *RollingMoments {
	if size < 1 {
		size = 1
	}
	return &RollingMoments{buf: make([]float64, size)}
}

// Add pushes x, evicting the oldest value once the window is full.
func (r *RollingMoments) Add(x float64) {
	if r.full {
		old := r.buf[r.head]
		r.sum -= old
		r.sum2 -= old * old
	}
	r.buf[r.head] = x
	r.sum += x
	r.sum2 += x * x
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.full = true
	}
}

// N returns the number of values currently in the window.
func (r *RollingMoments) N() int {
	if r.full {
		return len(r.buf)
	}
	return r.head
}

// Full reports whether the window has reached capacity.
func (r *RollingMoments) Full() bool { return r.full }

// Mean returns the window mean (0 when empty).
func (r *RollingMoments) Mean() float64 {
	n := r.N()
	if n == 0 {
		return 0
	}
	return r.sum / float64(n)
}

// Variance returns the unbiased sample variance of the window. Negative
// rounding residue is clamped to 0.
func (r *RollingMoments) Variance() float64 {
	n := r.N()
	if n < 2 {
		return 0
	}
	fn := float64(n)
	v := (r.sum2 - r.sum*r.sum/fn) / (fn - 1)
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the window sample standard deviation.
func (r *RollingMoments) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset empties the window.
func (r *RollingMoments) Reset() {
	r.head = 0
	r.full = false
	r.sum = 0
	r.sum2 = 0
}
