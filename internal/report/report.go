// Package report renders the reproduction's experiment outputs in the
// shape the paper presents them: Tables III–V (descriptive statistics
// of the three performance measures per correlation treatment), the
// Figure 2 box-plot summaries, and the Section IV computational-cost
// extrapolations ("854 hours … 445 days … 53 years").
//
// Rendering is pure and deterministic: every function is a function of
// the *backtest.Result (or merge report) it is handed, owns no state,
// and produces identical text for identical inputs — map iteration is
// avoided or sorted, so reports can be diffed across runs and hosts as
// a cheap bit-identity check on the pipeline that produced them.
package report

import (
	"fmt"
	"strings"

	"marketminer/internal/backtest"
)

// fmtVal renders one numeric cell.
func fmtVal(v float64, pct bool) string {
	if pct {
		return fmt.Sprintf("%.4f%%", v*100)
	}
	return fmt.Sprintf("%.4f", v)
}

// table renders a row-labelled table with one column per aggregate.
func table(title string, aggs []backtest.Aggregate, rows []string, cell func(a backtest.Aggregate, row string) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 20
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, a := range aggs {
		fmt.Fprintf(&b, "%12s", a.Type.String())
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s", width, row)
		for _, a := range aggs {
			fmt.Fprintf(&b, "%12s", cell(a, row))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// statCell returns the Table III/IV/V cell for a named statistic.
func statCell(a backtest.Aggregate, row string, pct bool) string {
	switch row {
	case "Mean":
		return fmtVal(a.Stats.Mean, pct)
	case "Median":
		return fmtVal(a.Stats.Median, pct)
	case "Standard Deviation":
		return fmtVal(a.Stats.StdDev, false)
	case "Sharpe Ratio":
		return fmtVal(a.Stats.Sharpe, false)
	case "Skewness":
		return fmtVal(a.Stats.Skewness, false)
	case "Kurtosis":
		return fmtVal(a.Stats.Kurtosis, false)
	case "N (pairs)":
		return fmt.Sprintf("%d", a.Stats.N)
	default:
		return "?"
	}
}

// TableIII renders the average-cumulative-monthly-returns table
// (gross multipliers, Sharpe included — exactly the paper's rows).
func TableIII(aggs []backtest.Aggregate) string {
	rows := []string{"Mean", "Median", "Standard Deviation", "Sharpe Ratio", "Skewness", "Kurtosis", "N (pairs)"}
	return table("TABLE III — AVERAGE CUMULATIVE MONTHLY RETURNS", aggs, rows,
		func(a backtest.Aggregate, r string) string { return statCell(a, r, false) })
}

// TableIV renders the average-maximum-daily-drawdown table (percent,
// like the paper; no Sharpe row).
func TableIV(aggs []backtest.Aggregate) string {
	rows := []string{"Mean", "Median", "Standard Deviation", "Skewness", "Kurtosis", "N (pairs)"}
	return table("TABLE IV — AVERAGE MAXIMUM DAILY DRAWDOWN", aggs, rows,
		func(a backtest.Aggregate, r string) string { return statCell(a, r, true) })
}

// TableV renders the average win–loss-ratio table.
func TableV(aggs []backtest.Aggregate) string {
	rows := []string{"Mean", "Median", "Standard Deviation", "Skewness", "Kurtosis", "N (pairs)"}
	return table("TABLE V — AVERAGE WIN-LOSS RATIO", aggs, rows,
		func(a backtest.Aggregate, r string) string { return statCell(a, r, false) })
}

// Figure2 renders the box-plot statistics of one performance measure —
// the numbers behind one panel of the paper's Figure 2 (median, first
// and third quartiles, whisker extents, outlier counts).
func Figure2(title string, aggs []backtest.Aggregate) string {
	rows := []string{"Median", "Q1 (25th pct)", "Q3 (75th pct)", "IQR", "Whisker low", "Whisker high", "Outliers low", "Outliers high"}
	return table("FIGURE 2 — "+title+" (box-plot statistics)", aggs, rows,
		func(a backtest.Aggregate, r string) string {
			switch r {
			case "Median":
				return fmtVal(a.Box.Median, false)
			case "Q1 (25th pct)":
				return fmtVal(a.Box.Q1, false)
			case "Q3 (75th pct)":
				return fmtVal(a.Box.Q3, false)
			case "IQR":
				return fmtVal(a.Box.IQR, false)
			case "Whisker low":
				return fmtVal(a.Box.WhiskerLow, false)
			case "Whisker high":
				return fmtVal(a.Box.WhiskerHigh, false)
			case "Outliers low":
				return fmt.Sprintf("%d", a.Box.NumLow)
			case "Outliers high":
				return fmt.Sprintf("%d", a.Box.NumHigh)
			default:
				return "?"
			}
		})
}

// Extrapolation reproduces Section IV's cost arithmetic: given the
// measured per-(pair, day, parameter-set) time in seconds, it scales to
// the paper's three scenarios — the full month sweep, a year, and a
// 1000-stock-pair month — on a single sequential machine.
type Extrapolation struct {
	UnitSeconds float64 // one (pair, day, set) return vector
	Pairs       int
	Days        int
	Sets        int
}

// MonthHours returns the full-sweep estimate in hours (paper: 854 h
// for 1830 pairs × 20 days × 42 sets at 2 s).
func (e Extrapolation) MonthHours() float64 {
	return e.UnitSeconds * float64(e.Pairs) * float64(e.Days) * float64(e.Sets) / 3600
}

// YearDays returns the one-year estimate in days (paper: ≈445 days at
// 252 trading days).
func (e Extrapolation) YearDays() float64 {
	return e.UnitSeconds * float64(e.Pairs) * 252 * float64(e.Sets) / 86400
}

// ThousandStockYears returns the month estimate for a 1000-stock
// universe (499500 pairs) in years — the paper's "53 years". Note the
// paper's printed figure (19425 days) is 2× what its own inputs give
// (2 s × 499500 × 20 × 42 = 9712.5 days ≈ 26.6 years); this method
// uses the self-consistent arithmetic.
func (e Extrapolation) ThousandStockYears() float64 {
	pairs := 1000.0 * 999 / 2
	return e.UnitSeconds * pairs * float64(e.Days) * float64(e.Sets) / 86400 / 365
}

// String renders the Section IV cost table.
func (e Extrapolation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SECTION IV — SEQUENTIAL COST EXTRAPOLATION\n")
	fmt.Fprintf(&b, "  measured unit cost       %10.4f s per (pair, day, set)\n", e.UnitSeconds)
	fmt.Fprintf(&b, "  sweep %d pairs x %d days x %d sets\n", e.Pairs, e.Days, e.Sets)
	fmt.Fprintf(&b, "  month on one core        %10.1f hours   (paper: 854 hours)\n", e.MonthHours())
	fmt.Fprintf(&b, "  year on one core         %10.1f days    (paper: ~445 days)\n", e.YearDays())
	fmt.Fprintf(&b, "  1000 stocks, one month   %10.1f years   (paper: ~53 years)\n", e.ThousandStockYears())
	return b.String()
}

// Speedup is one row of the Section V performance comparison between
// the three approaches.
type Speedup struct {
	Name    string
	Seconds float64
}

// SpeedupTable renders a wall-clock comparison, normalised to the
// first (baseline) row.
func SpeedupTable(title string, rows []Speedup) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		return b.String()
	}
	base := rows[0].Seconds
	fmt.Fprintf(&b, "  %-34s %12s %10s\n", "configuration", "seconds", "speedup")
	for _, r := range rows {
		sp := 0.0
		if r.Seconds > 0 {
			sp = base / r.Seconds
		}
		fmt.Fprintf(&b, "  %-34s %12.3f %9.2fx\n", r.Name, r.Seconds, sp)
	}
	return b.String()
}
