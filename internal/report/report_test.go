package report

import (
	"math"
	"strings"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/stats"
)

func sampleAggs() []backtest.Aggregate {
	mk := func(t corr.Type, vals []float64) backtest.Aggregate {
		a := backtest.Aggregate{Type: t, PerPair: vals}
		a.Stats = stats.DescribeSample(vals)
		bp, _ := stats.BoxPlotStats(vals)
		a.Box = bp
		return a
	}
	return []backtest.Aggregate{
		mk(corr.Maronna, []float64{1.10, 1.15, 1.12, 1.30}),
		mk(corr.Pearson, []float64{1.11, 1.16, 1.13, 1.20}),
		mk(corr.Combined, []float64{1.09, 1.11, 1.10, 1.12}),
	}
}

func TestTableIIIContainsAllColumnsAndRows(t *testing.T) {
	s := TableIII(sampleAggs())
	for _, want := range []string{"TABLE III", "Maronna", "Pearson", "Combined",
		"Mean", "Median", "Standard Deviation", "Sharpe Ratio", "Skewness", "Kurtosis"} {
		if !strings.Contains(s, want) {
			t.Errorf("TableIII missing %q:\n%s", want, s)
		}
	}
	// Mean of the Maronna column is 1.1675.
	if !strings.Contains(s, "1.1675") {
		t.Errorf("TableIII missing expected mean value:\n%s", s)
	}
}

func TestTableIVUsesPercent(t *testing.T) {
	aggs := sampleAggs()
	for i := range aggs {
		for j := range aggs[i].PerPair {
			aggs[i].PerPair[j] = 0.015 // 1.5% drawdowns
		}
		aggs[i].Stats = stats.DescribeSample(aggs[i].PerPair)
	}
	s := TableIV(aggs)
	if !strings.Contains(s, "%") {
		t.Errorf("TableIV should format percentages:\n%s", s)
	}
	if !strings.Contains(s, "1.5000%") {
		t.Errorf("TableIV missing percent value:\n%s", s)
	}
	if strings.Contains(s, "Sharpe") {
		t.Error("TableIV should not contain a Sharpe row (paper)")
	}
}

func TestTableV(t *testing.T) {
	s := TableV(sampleAggs())
	if !strings.Contains(s, "TABLE V") || !strings.Contains(s, "WIN-LOSS") {
		t.Errorf("TableV header wrong:\n%s", s)
	}
}

func TestFigure2(t *testing.T) {
	s := Figure2("Monthly Returns", sampleAggs())
	for _, want := range []string{"FIGURE 2", "Monthly Returns", "Median", "Q1", "Q3", "Whisker", "Outliers"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, s)
		}
	}
}

func TestExtrapolationPaperNumbers(t *testing.T) {
	// The paper's own arithmetic: 1830 pairs × 20 days × 42 sets at
	// 2 s/unit ≈ 854 hours.
	e := Extrapolation{UnitSeconds: 2, Pairs: 1830, Days: 20, Sets: 42}
	if h := e.MonthHours(); math.Abs(h-854) > 1 {
		t.Errorf("MonthHours = %v, paper says 854", h)
	}
	// Year: 1830 × 252 × 42 × 2s ≈ 448 days (paper: ~445).
	if d := e.YearDays(); math.Abs(d-448) > 5 {
		t.Errorf("YearDays = %v, paper says ≈445", d)
	}
	// 1000 stocks (499500 pairs), one month. The paper reports
	// "19425 days, or 53 years", but its own inputs (2 s × 499500
	// pairs × 20 days × 42 sets) give 9712.5 days ≈ 26.6 years — the
	// paper's figure carries a stray factor of 2. We reproduce the
	// self-consistent arithmetic.
	if y := e.ThousandStockYears(); math.Abs(y-26.6) > 0.5 {
		t.Errorf("ThousandStockYears = %v, want ≈26.6 (self-consistent form of the paper's 53)", y)
	}
	s := e.String()
	for _, want := range []string{"854", "445", "SECTION IV"} {
		if !strings.Contains(s, want) {
			t.Errorf("Extrapolation text missing %q:\n%s", want, s)
		}
	}
}

func TestSpeedupTable(t *testing.T) {
	s := SpeedupTable("approaches", []Speedup{
		{Name: "sequential", Seconds: 100},
		{Name: "integrated", Seconds: 10},
	})
	if !strings.Contains(s, "10.00x") {
		t.Errorf("speedup not computed:\n%s", s)
	}
	if !strings.Contains(s, "sequential") || !strings.Contains(s, "integrated") {
		t.Errorf("rows missing:\n%s", s)
	}
	if got := SpeedupTable("empty", nil); !strings.Contains(got, "empty") {
		t.Error("empty table should still print title")
	}
}

func TestSpeedupZeroGuard(t *testing.T) {
	s := SpeedupTable("t", []Speedup{{Name: "a", Seconds: 5}, {Name: "b", Seconds: 0}})
	if !strings.Contains(s, "0.00x") {
		t.Errorf("zero-seconds row should render 0.00x:\n%s", s)
	}
}
