package report

import (
	"fmt"
	"time"
)

// ProgressLine renders one sweep progress line — the operator-facing
// counterpart of the machine-readable sweep manifest: shard identity,
// units done/total with percentage, live throughput, extrapolated time
// to finish, trade count, and the robust kernel's warm-start hit rate.
func ProgressLine(shard string, done, total int, rate float64, eta time.Duration, trades int64, warmFrac float64) string {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	etaStr := "--"
	if eta > 0 {
		etaStr = eta.Round(time.Second).String()
	}
	return fmt.Sprintf("shard %s: %d/%d units (%5.1f%%)  %6.2f units/s  eta %-8s  %d trades  warm %5.1f%%",
		shard, done, total, pct, rate, etaStr, trades, 100*warmFrac)
}

// MergeSummary renders what a journal merge combined: how many shard
// journals, how much of the sweep they cover, and any anomalies
// (duplicate units, healed corruption) worth an operator's glance.
func MergeSummary(files, shardCount, units, unitsTotal, duplicates, corrupt int) string {
	s := fmt.Sprintf("merged %d journal(s) (%d-way sweep): %d/%d units", files, shardCount, units, unitsTotal)
	if duplicates > 0 {
		s += fmt.Sprintf(", %d duplicate entries (last wins)", duplicates)
	}
	if corrupt > 0 {
		s += fmt.Sprintf(", %d journal(s) had damaged tails", corrupt)
	}
	return s
}
