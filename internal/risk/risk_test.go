package risk

import (
	"errors"
	"math"
	"testing"

	"marketminer/internal/portfolio"
)

func buy(stock, shares int, price float64) portfolio.Order {
	return portfolio.Order{Stock: stock, Side: portfolio.Buy, Shares: shares, Price: price}
}

func sell(stock, shares int, price float64) portfolio.Order {
	return portfolio.Order{Stock: stock, Side: portfolio.Sell, Shares: shares, Price: price}
}

func TestUnlimitedAcceptsEverything(t *testing.T) {
	m, err := NewManager(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := m.Apply(buy(i%3, 1000, 500)); err != nil {
			t.Fatalf("unlimited manager rejected: %v", err)
		}
	}
	if m.Accepted() != 100 || m.TotalRejected() != 0 {
		t.Errorf("accepted=%d rejected=%d", m.Accepted(), m.TotalRejected())
	}
	if !math.IsNaN(m.GrossUtilisation()) {
		t.Error("utilisation should be NaN when unlimited")
	}
}

func TestNewManagerRejectsNegativeLimits(t *testing.T) {
	if _, err := NewManager(Limits{MaxOrders: -1}); err == nil {
		t.Error("negative limit should error")
	}
}

func TestGrossExposureLimit(t *testing.T) {
	m, _ := NewManager(Limits{MaxGrossExposure: 1000})
	if err := m.Apply(buy(0, 9, 100)); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	err := m.Apply(buy(1, 5, 100)) // would take gross to 1400
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Reason != GrossExposure {
		t.Fatalf("want gross-exposure rejection, got %v", err)
	}
	if m.Rejected(GrossExposure) != 1 {
		t.Errorf("Rejected(GrossExposure) = %d", m.Rejected(GrossExposure))
	}
	if u := m.GrossUtilisation(); u != 0.9 {
		t.Errorf("utilisation = %v, want 0.9", u)
	}
}

func TestStockConcentrationLimit(t *testing.T) {
	m, _ := NewManager(Limits{MaxStockShares: 10})
	if err := m.Apply(buy(0, 10, 5)); err != nil {
		t.Fatal(err)
	}
	err := m.Apply(buy(0, 1, 5))
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Reason != StockConcentration {
		t.Fatalf("want concentration rejection, got %v", err)
	}
	// Short side is symmetric.
	if err := m.Apply(sell(1, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(sell(1, 1, 5)); err == nil {
		t.Fatal("short concentration not enforced")
	}
}

func TestOrderNotionalLimit(t *testing.T) {
	m, _ := NewManager(Limits{MaxOrderNotional: 500})
	if err := m.Apply(buy(0, 4, 100)); err != nil {
		t.Fatal(err)
	}
	err := m.Apply(buy(1, 6, 100))
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Reason != OrderNotional {
		t.Fatalf("want notional rejection, got %v", err)
	}
}

func TestOrderBudget(t *testing.T) {
	m, _ := NewManager(Limits{MaxOrders: 2})
	if err := m.Apply(buy(0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(buy(1, 1, 10)); err != nil {
		t.Fatal(err)
	}
	err := m.Apply(buy(2, 1, 10))
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Reason != OrderBudget {
		t.Fatalf("want budget rejection, got %v", err)
	}
}

func TestClosingOrdersAlwaysAllowed(t *testing.T) {
	m, _ := NewManager(Limits{MaxGrossExposure: 1000, MaxOrders: 1, MaxStockShares: 10})
	if err := m.Apply(buy(0, 10, 100)); err != nil {
		t.Fatal(err)
	}
	// Every limit is now saturated, but the closing sell must pass.
	if err := m.Apply(sell(0, 10, 100)); err != nil {
		t.Fatalf("closing order rejected: %v", err)
	}
	if !m.Book().Flat() {
		t.Error("book should be flat")
	}
}

func TestCheckDoesNotMutate(t *testing.T) {
	m, _ := NewManager(Limits{MaxOrders: 5})
	for i := 0; i < 10; i++ {
		m.Check(buy(0, 1, 10))
	}
	if m.Accepted() != 0 || m.TotalRejected() != 0 {
		t.Error("Check must not count")
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		Accepted: "accepted", GrossExposure: "gross-exposure",
		StockConcentration: "stock-concentration", OrderNotional: "order-notional",
		OrderBudget: "order-budget", Reason(9): "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestErrRejectedMessage(t *testing.T) {
	e := &ErrRejected{Reason: OrderNotional, Order: buy(3, 7, 42)}
	msg := e.Error()
	for _, want := range []string{"order-notional", "buy", "7", "42"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestApplyPairAtomic(t *testing.T) {
	m, _ := NewManager(Limits{MaxStockShares: 5})
	legs := []portfolio.Order{buy(0, 3, 10), sell(1, 10, 10)} // second leg breaches
	err := m.ApplyPair(legs)
	var rej *ErrRejected
	if !errors.As(err, &rej) {
		t.Fatalf("want rejection, got %v", err)
	}
	if m.Book().NetShares(0) != 0 {
		t.Error("rejected basket must leave the book untouched")
	}
	if m.TotalRejected() != 2 {
		t.Errorf("rejected legs = %d, want 2", m.TotalRejected())
	}
	// A compliant basket applies fully.
	if err := m.ApplyPair([]portfolio.Order{buy(0, 3, 10), sell(1, 4, 10)}); err != nil {
		t.Fatal(err)
	}
	if m.Accepted() != 2 {
		t.Errorf("accepted = %d", m.Accepted())
	}
}

func TestApplyClosingPairBypassesChecks(t *testing.T) {
	m, _ := NewManager(Limits{MaxGrossExposure: 1, MaxOrders: 1, MaxStockShares: 1})
	// Exceeds every limit, but closing flow must pass.
	if err := m.ApplyClosingPair([]portfolio.Order{sell(0, 50, 100), buy(1, 50, 100)}); err != nil {
		t.Fatalf("closing pair rejected: %v", err)
	}
	if m.Book().NetShares(0) != -50 || m.Book().NetShares(1) != 50 {
		t.Error("closing legs not applied")
	}
}
