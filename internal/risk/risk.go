// Package risk implements the master-process risk controls of the
// paper's Figure 1: "the outputs from each strategy (trade decisions)
// can be gathered by a master process to perform additional tasks such
// as risk management and liquidity provisioning".
//
// A Manager sits between the strategy nodes and the execution book:
// every order request is checked against configured limits before it
// is applied, and violations are rejected with a typed reason the
// pipeline surfaces in its run summary. Closing (risk-reducing) orders
// are always allowed — a limit breach must never trap an open
// position.
package risk

import (
	"errors"
	"fmt"
	"math"

	"marketminer/internal/portfolio"
)

// Limits configures the manager. Zero-valued fields are unlimited.
type Limits struct {
	// MaxGrossExposure caps the book's total |shares|·price value.
	MaxGrossExposure float64
	// MaxStockShares caps net |shares| held in any single stock.
	MaxStockShares int
	// MaxOrderNotional caps a single order's dollar value (the
	// liquidity-provisioning knob: oversized orders would move the
	// market and must be sliced upstream).
	MaxOrderNotional float64
	// MaxOrders caps total accepted orders per session (a runaway-
	// strategy fuse).
	MaxOrders int
}

// Unlimited reports whether every limit is disabled.
func (l Limits) Unlimited() bool {
	return l.MaxGrossExposure == 0 && l.MaxStockShares == 0 &&
		l.MaxOrderNotional == 0 && l.MaxOrders == 0
}

// Reason classifies a rejection.
type Reason int

// Rejection reasons.
const (
	Accepted Reason = iota
	GrossExposure
	StockConcentration
	OrderNotional
	OrderBudget
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case GrossExposure:
		return "gross-exposure"
	case StockConcentration:
		return "stock-concentration"
	case OrderNotional:
		return "order-notional"
	case OrderBudget:
		return "order-budget"
	default:
		return "unknown"
	}
}

// ErrRejected wraps a rejection with its reason.
type ErrRejected struct {
	Reason Reason
	Order  portfolio.Order
}

func (e *ErrRejected) Error() string {
	return fmt.Sprintf("risk: order rejected (%s): %s %d shares of stock %d @ %.2f",
		e.Reason, e.Order.Side, e.Order.Shares, e.Order.Stock, e.Order.Price)
}

// Manager enforces Limits over a portfolio.Book. Not safe for
// concurrent use; the pipeline's master node is single-threaded by
// construction.
type Manager struct {
	limits   Limits
	book     *portfolio.Book
	accepted int
	rejected map[Reason]int
}

// NewManager wraps a fresh book with the given limits.
func NewManager(limits Limits) (*Manager, error) {
	if limits.MaxGrossExposure < 0 || limits.MaxStockShares < 0 ||
		limits.MaxOrderNotional < 0 || limits.MaxOrders < 0 {
		return nil, errors.New("risk: limits must be non-negative")
	}
	return &Manager{
		limits:   limits,
		book:     portfolio.NewBook(),
		rejected: make(map[Reason]int),
	}, nil
}

// Book exposes the underlying basket book (read-only use expected).
func (m *Manager) Book() *portfolio.Book { return m.book }

// Accepted returns the number of orders applied.
func (m *Manager) Accepted() int { return m.accepted }

// Rejected returns the rejection count for one reason.
func (m *Manager) Rejected(r Reason) int { return m.rejected[r] }

// TotalRejected returns all rejections.
func (m *Manager) TotalRejected() int {
	var n int
	for _, c := range m.rejected {
		n += c
	}
	return n
}

// reduces reports whether the order shrinks the absolute position in
// its stock (a closing leg).
func (m *Manager) reduces(o portfolio.Order) bool {
	cur := m.book.NetShares(o.Stock)
	delta := o.Shares
	if o.Side == portfolio.Sell {
		delta = -delta
	}
	next := cur + delta
	return abs(next) < abs(cur)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Check classifies an order without applying it.
func (m *Manager) Check(o portfolio.Order) Reason {
	if m.limits.Unlimited() || m.reduces(o) {
		return Accepted
	}
	if m.limits.MaxOrders > 0 && m.accepted >= m.limits.MaxOrders {
		return OrderBudget
	}
	if m.limits.MaxOrderNotional > 0 && o.Notional() > m.limits.MaxOrderNotional {
		return OrderNotional
	}
	if m.limits.MaxStockShares > 0 {
		cur := m.book.NetShares(o.Stock)
		delta := o.Shares
		if o.Side == portfolio.Sell {
			delta = -delta
		}
		if abs(cur+delta) > m.limits.MaxStockShares {
			return StockConcentration
		}
	}
	if m.limits.MaxGrossExposure > 0 {
		// Conservative: adding the full order notional to gross.
		if m.book.GrossExposure()+o.Notional() > m.limits.MaxGrossExposure+1e-9 {
			return GrossExposure
		}
	}
	return Accepted
}

// Apply checks and, if accepted, applies the order to the book. It
// returns *ErrRejected on a limit breach and the book's error on a
// malformed order.
func (m *Manager) Apply(o portfolio.Order) error {
	if r := m.Check(o); r != Accepted {
		m.rejected[r]++
		return &ErrRejected{Reason: r, Order: o}
	}
	if err := m.book.Apply(o); err != nil {
		return err
	}
	m.accepted++
	return nil
}

// ApplyPair applies a two-leg pair basket atomically: either every
// leg passes Check and all are applied, or none are and an
// *ErrRejected for the first offending leg is returned. The gross
// check is per-leg (slightly optimistic for the second leg), which is
// the standard pre-trade-check approximation.
//
// Closing baskets bypass the checks entirely: when several pair
// positions overlap on a stock, an exit leg can *increase* that
// stock's net book position, yet refusing it would trap the open pair
// — risk limits must never block risk-off flow. Callers flag closing
// baskets via ApplyClosingPair.
func (m *Manager) ApplyPair(legs []portfolio.Order) error {
	for _, o := range legs {
		if r := m.Check(o); r != Accepted {
			m.rejected[r] += len(legs)
			return &ErrRejected{Reason: r, Order: o}
		}
	}
	for _, o := range legs {
		if err := m.book.Apply(o); err != nil {
			return err
		}
		m.accepted++
	}
	return nil
}

// ApplyClosingPair applies an exit basket unconditionally (see
// ApplyPair for why closing flow is never blocked).
func (m *Manager) ApplyClosingPair(legs []portfolio.Order) error {
	for _, o := range legs {
		if err := m.book.Apply(o); err != nil {
			return err
		}
		m.accepted++
	}
	return nil
}

// GrossUtilisation returns current gross exposure as a fraction of the
// limit (NaN if unlimited) — a dashboard number for the master node.
func (m *Manager) GrossUtilisation() float64 {
	if m.limits.MaxGrossExposure == 0 {
		return math.NaN()
	}
	return m.book.GrossExposure() / m.limits.MaxGrossExposure
}
