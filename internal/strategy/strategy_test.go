package strategy

import (
	"math"
	"testing"

	"marketminer/internal/corr"
	"marketminer/internal/series"
)

// testParams uses small windows so scenarios stay readable.
func testParams() Params {
	p := DefaultParams()
	p.M = 10
	p.W = 5
	p.Y = 3
	p.D = 0.001
	p.L = 1.0 / 3
	p.RT = 5
	p.HP = 50
	p.ST = 5
	return p
}

// makeGrid builds a 2-stock grid where stock 0 is flat at 100 and
// stock 1 follows pj.
func makeGrid(t *testing.T, pj func(s int) float64) *series.PriceGrid {
	t.Helper()
	g, err := series.NewGrid(30)
	if err != nil {
		t.Fatal(err)
	}
	p0 := make([]float64, g.SMax)
	p1 := make([]float64, g.SMax)
	for s := 0; s < g.SMax; s++ {
		p0[s] = 100
		p1[s] = pj(s)
	}
	return &series.PriceGrid{Grid: g, Prices: [][]float64{p0, p1}}
}

// dipRecover: stock 1 trades at 50, dips 10 intervals starting at
// start, then recovers at the same rate.
func dipRecover(start int) func(int) float64 {
	return func(s int) float64 {
		switch {
		case s < start:
			return 50
		case s < start+10:
			return 50 - 0.1*float64(s-start+1)
		case s < start+20:
			return 49 + 0.1*float64(s-start-9)
		default:
			return 50
		}
	}
}

// dipStay: dips and never recovers.
func dipStay(start int) func(int) float64 {
	return func(s int) float64 {
		switch {
		case s < start:
			return 50
		case s < start+10:
			return 50 - 0.1*float64(s-start+1)
		default:
			return 49
		}
	}
}

// runScenario feeds the tracker constant cbar=0.9 and a correlation
// that sits at 0.9 except inside [dipLo, dipHi) where it is 0.85.
func runScenario(t *testing.T, p Params, pg *series.PriceGrid, from, to, dipLo, dipHi int) *Tracker {
	t.Helper()
	tr, err := NewTracker(p, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := from; s <= to; s++ {
		c := 0.9
		if s >= dipLo && s < dipHi {
			c = 0.85
		}
		tr.Step(s, c, 0.9, pg)
	}
	return tr
}

func TestEntryOnFreshDivergence(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	tr, err := NewTracker(p, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var orders int
	for s := 90; s <= 100; s++ {
		c := 0.9
		if s >= 100 {
			c = 0.85
		}
		_, ords := tr.Step(s, c, 0.9, pg)
		orders += len(ords)
	}
	pos := tr.Position()
	if pos == nil {
		t.Fatal("no position opened on fresh divergence")
	}
	if orders != 2 {
		t.Errorf("entry emitted %d orders, want 2", orders)
	}
	// Stock 1 under-performed → long 1, short 0.
	if pos.LongStock != 1 || pos.ShortStock != 0 {
		t.Errorf("direction wrong: long=%d short=%d", pos.LongStock, pos.ShortStock)
	}
	// Short leg is the expensive stock: 1 share; long leg ceil(100/49.9)=3.
	if pos.ShortSh != 1 || pos.LongSh != 3 {
		t.Errorf("share ratio = %d:%d, want 1:3", pos.ShortSh, pos.LongSh)
	}
	if pos.EntryS != 100 {
		t.Errorf("entry interval = %d, want 100", pos.EntryS)
	}
	// Slightly long basket.
	if pos.NetEntry() < 0 {
		t.Errorf("NetEntry = %v, want ≥ 0", pos.NetEntry())
	}
}

func TestRetracementExitProfitable(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	tr := runScenario(t, p, pg, 90, 130, 100, 115)
	trades := tr.Trades()
	if len(trades) != 1 {
		t.Fatalf("trades = %d, want 1", len(trades))
	}
	tt := trades[0]
	if tt.Reason != ExitRetracement {
		t.Errorf("reason = %v, want retracement", tt.Reason)
	}
	if tt.Return <= 0 {
		t.Errorf("return = %v, want > 0 (bought the dip, spread retraced)", tt.Return)
	}
	if tt.ExitS <= tt.EntryS {
		t.Errorf("exit %d not after entry %d", tt.ExitS, tt.EntryS)
	}
	if tr.Position() != nil {
		t.Error("position still open after retracement")
	}
}

func TestHoldingPeriodExit(t *testing.T) {
	p := testParams()
	p.HP = 10
	pg := makeGrid(t, dipStay(100))
	tr := runScenario(t, p, pg, 90, 200, 100, 200)
	trades := tr.Trades()
	if len(trades) != 1 {
		t.Fatalf("trades = %d, want 1", len(trades))
	}
	if trades[0].Reason != ExitHoldingPeriod {
		t.Errorf("reason = %v, want holding-period", trades[0].Reason)
	}
	if got := trades[0].ExitS - trades[0].EntryS; got != 10 {
		t.Errorf("held %d intervals, want exactly HP=10", got)
	}
}

func TestEndOfDayExit(t *testing.T) {
	p := testParams()
	p.HP = 500
	pg := makeGrid(t, dipStay(760))
	tr := runScenario(t, p, pg, 750, 779, 760, 780)
	trades := tr.Trades()
	if len(trades) != 1 {
		t.Fatalf("trades = %d, want 1", len(trades))
	}
	tt := trades[0]
	if tt.Reason != ExitEndOfDay {
		t.Errorf("reason = %v, want end-of-day", tt.Reason)
	}
	if tt.ExitS != 779 {
		t.Errorf("exit = %d, want 779 (last interval)", tt.ExitS)
	}
}

func TestNoEntryTooCloseToClose(t *testing.T) {
	p := testParams()
	p.ST = 20
	pg := makeGrid(t, dipStay(765))
	tr := runScenario(t, p, pg, 750, 779, 765, 780)
	if len(tr.Trades()) != 0 || tr.Position() != nil {
		t.Error("entered a position within ST of the close")
	}
}

func TestNoEntryBelowThresholdA(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	tr, _ := NewTracker(p, 0, 1, 0)
	for s := 90; s <= 130; s++ {
		c := 0.05
		if s >= 100 && s < 115 {
			c = 0.02
		}
		tr.Step(s, c, 0.05, pg) // cbar = 0.05 ≤ A = 0.1
	}
	if len(tr.Trades()) != 0 || tr.Position() != nil {
		t.Error("traded despite C̄ ≤ A")
	}
}

func TestStaleDivergenceIgnored(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipStay(80))
	tr, _ := NewTracker(p, 0, 1, 0)
	// Divergence from s=90 onward, but cbar ≤ A until s=100: by the
	// time trading is allowed, the divergence is Y-stale.
	for s := 90; s <= 200; s++ {
		cbar := 0.05
		if s >= 100 {
			cbar = 0.9
		}
		tr.Step(s, 0.85, cbar, pg)
	}
	if len(tr.Trades()) != 0 || tr.Position() != nil {
		t.Error("entered on a divergence older than Y intervals")
	}
}

func TestReArmRequiresRecovery(t *testing.T) {
	p := testParams()
	p.HP = 2 // exit fast so re-entry opportunity exists
	pg := makeGrid(t, dipStay(100))
	tr, _ := NewTracker(p, 0, 1, 0)
	step := func(s int, c float64) { tr.Step(s, c, 0.9, pg) }
	for s := 90; s < 100; s++ {
		step(s, 0.9)
	}
	// First divergence episode: entry at 100, HP exit at 102.
	for s := 100; s <= 106; s++ {
		step(s, 0.85)
	}
	if n := len(tr.Trades()); n != 1 {
		t.Fatalf("trades after first episode = %d, want 1 (no instant re-entry)", n)
	}
	// Recovery re-arms; a second dip triggers a second trade.
	for s := 107; s <= 109; s++ {
		step(s, 0.9)
	}
	for s := 110; s <= 115; s++ {
		step(s, 0.85)
	}
	if n := len(tr.Trades()); n != 2 {
		t.Errorf("trades after second episode = %d, want 2", n)
	}
}

func TestStopLossExtension(t *testing.T) {
	p := testParams()
	p.StopLoss = 0.001
	pg := makeGrid(t, dipStay(100))
	tr := runScenario(t, p, pg, 90, 200, 100, 200)
	trades := tr.Trades()
	if len(trades) == 0 {
		t.Fatal("no trades")
	}
	if trades[0].Reason != ExitStopLoss {
		t.Errorf("reason = %v, want stop-loss", trades[0].Reason)
	}
	if trades[0].Return >= 0 {
		t.Errorf("stop-loss trade return = %v, want < 0", trades[0].Return)
	}
}

func TestCorrReversionExtension(t *testing.T) {
	p := testParams()
	p.CorrReversion = true
	pg := makeGrid(t, dipStay(100))
	tr, _ := NewTracker(p, 0, 1, 0)
	for s := 90; s <= 200; s++ {
		c := 0.9
		switch {
		case s >= 100 && s < 105:
			c = 0.85 // divergence → entry
		case s >= 105 && s < 110:
			c = 0.8995 // back inside [C̄(1−d), C̄) → reversion exit
		}
		tr.Step(s, c, 0.9, pg)
	}
	trades := tr.Trades()
	if len(trades) == 0 {
		t.Fatal("no trades")
	}
	if trades[0].Reason != ExitCorrReversion {
		t.Errorf("reason = %v, want corr-reversion", trades[0].Reason)
	}
	if trades[0].ExitS != 105 {
		t.Errorf("exit = %d, want 105", trades[0].ExitS)
	}
}

func TestRunDayEndToEnd(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	firstS := p.M
	n := pg.Grid.SMax - firstS
	cs := make([]float64, n)
	for tix := range cs {
		s := firstS + tix
		cs[tix] = 0.9
		if s >= 100 && s < 115 {
			cs[tix] = 0.85
		}
	}
	trades, err := RunDay(p, cs, firstS, pg, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trades) != 1 {
		t.Fatalf("trades = %d, want 1", len(trades))
	}
	tt := trades[0]
	if tt.Day != 3 {
		t.Errorf("day = %d", tt.Day)
	}
	if tt.EntryS < 100 || tt.EntryS > 102 {
		t.Errorf("entry = %d, want ≈100", tt.EntryS)
	}
	if tt.Reason != ExitRetracement || tt.Return <= 0 {
		t.Errorf("trade = %+v, want profitable retracement", tt)
	}
}

func TestRunDayErrors(t *testing.T) {
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	if _, err := RunDay(p, make([]float64, 2), p.M, pg, 0, 1, 0); err == nil {
		t.Error("short corr series should error")
	}
	bad := p
	bad.L = 2
	if _, err := RunDay(bad, make([]float64, 700), p.M, pg, 0, 1, 0); err == nil {
		t.Error("invalid params should error")
	}
}

func TestNewTrackerErrors(t *testing.T) {
	p := testParams()
	if _, err := NewTracker(p, 1, 1, 0); err == nil {
		t.Error("non-canonical pair should error")
	}
	if _, err := NewTracker(p, 2, 1, 0); err == nil {
		t.Error("reversed pair should error")
	}
	bad := p
	bad.M = 0
	if _, err := NewTracker(bad, 0, 1, 0); err == nil {
		t.Error("invalid params should error")
	}
}

func TestParamsValidateTable(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.DeltaS = 0 },
		func(p *Params) { p.A = -0.1 },
		func(p *Params) { p.A = 1 },
		func(p *Params) { p.M = 1 },
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.Y = 0 },
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.L = 0 },
		func(p *Params) { p.L = 1 },
		func(p *Params) { p.RT = 0 },
		func(p *Params) { p.HP = 0 },
		func(p *Params) { p.ST = -1 },
		func(p *Params) { p.StopLoss = -0.5 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestBaseGridHas14Levels(t *testing.T) {
	grid := BaseGrid()
	if len(grid) != 14 {
		t.Fatalf("BaseGrid = %d levels, want 14 (paper)", len(grid))
	}
	seen := map[string]bool{}
	for _, p := range grid {
		if err := p.Validate(); err != nil {
			t.Errorf("grid vector invalid: %v (%v)", err, p)
		}
		key := p.String()
		if seen[key] {
			t.Errorf("duplicate grid vector %v", p)
		}
		seen[key] = true
	}
}

func TestFullGridIs42Sets(t *testing.T) {
	grid := FullGrid()
	if len(grid) != 42 {
		t.Fatalf("FullGrid = %d sets, want 42 (14 × 3)", len(grid))
	}
	byType := map[corr.Type]int{}
	for _, p := range grid {
		byType[p.Ctype]++
	}
	for _, ty := range corr.Types() {
		if byType[ty] != 14 {
			t.Errorf("%v has %d sets, want 14", ty, byType[ty])
		}
	}
}

func TestExitReasonStrings(t *testing.T) {
	names := map[ExitReason]string{
		ExitRetracement:   "retracement",
		ExitHoldingPeriod: "holding-period",
		ExitEndOfDay:      "end-of-day",
		ExitStopLoss:      "stop-loss",
		ExitCorrReversion: "corr-reversion",
		ExitReason(42):    "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestTradeReturnConsistency(t *testing.T) {
	// Every recorded trade must satisfy Return = PnL / gross entry.
	p := testParams()
	pg := makeGrid(t, dipRecover(100))
	tr := runScenario(t, p, pg, 90, 200, 100, 115)
	for _, tt := range tr.Trades() {
		gross := float64(tt.LongSh)*tt.LongEntry + float64(tt.ShortSh)*tt.ShortEntry
		if math.Abs(tt.Return-tt.PnL/gross) > 1e-12 {
			t.Errorf("return inconsistent: %v vs %v", tt.Return, tt.PnL/gross)
		}
	}
}
