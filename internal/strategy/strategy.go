package strategy

import (
	"errors"
	"fmt"
	"math"

	"marketminer/internal/portfolio"
	"marketminer/internal/series"
)

// ExitReason records why a position was reversed.
type ExitReason int

// Exit reasons, §III step 5.
const (
	ExitRetracement ExitReason = iota
	ExitHoldingPeriod
	ExitEndOfDay
	ExitStopLoss      // extension, off by default
	ExitCorrReversion // extension, off by default
)

// String names the exit reason.
func (r ExitReason) String() string {
	switch r {
	case ExitRetracement:
		return "retracement"
	case ExitHoldingPeriod:
		return "holding-period"
	case ExitEndOfDay:
		return "end-of-day"
	case ExitStopLoss:
		return "stop-loss"
	case ExitCorrReversion:
		return "corr-reversion"
	default:
		return "unknown"
	}
}

// Trade is one completed round-trip pair trade.
type Trade struct {
	Day          int
	PairI, PairJ int // canonical universe indices, I < J
	EntryS       int
	ExitS        int
	LongStock    int
	ShortStock   int
	LongSh       int
	ShortSh      int
	LongEntry    float64
	ShortEntry   float64
	LongExit     float64
	ShortExit    float64
	PnL          float64
	Return       float64 // §III step 6: PnL / entry gross exposure
	Reason       ExitReason
}

// Tracker is the per-(pair, parameter-set) strategy state machine. It
// is fed one interval at a time — by the backtester sweeping a stored
// day, or by the live Figure-1 pipeline as matrices stream out of the
// correlation engine. The caller supplies C(s) and C̄(s); the tracker
// owns divergence freshness, position state and exit logic.
type Tracker struct {
	p          Params
	pairI      int
	pairJ      int
	day        int
	pos        *portfolio.PairPosition
	armed      bool // above the divergence band since the last entry
	belowAge   int  // intervals since the divergence band was crossed
	trades     []Trade
	lastEntryS int
}

// NewTracker builds a tracker for one pair. pairI < pairJ is required.
func NewTracker(p Params, pairI, pairJ, day int) (*Tracker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pairI >= pairJ {
		return nil, fmt.Errorf("strategy: pair (%d,%d) not in canonical order", pairI, pairJ)
	}
	return &Tracker{p: p, pairI: pairI, pairJ: pairJ, day: day, armed: true, lastEntryS: -1}, nil
}

// Position returns the open position, or nil when flat.
func (tr *Tracker) Position() *portfolio.PairPosition { return tr.pos }

// Trades returns all completed trades so far.
func (tr *Tracker) Trades() []Trade { return tr.trades }

// Step advances the tracker to interval s with the current correlation
// c = C(s) and its W-average cbar = C̄(s), against the day's price
// grid. It returns a completed trade (nil if none) and any orders
// generated this interval (entry or exit legs).
func (tr *Tracker) Step(s int, c, cbar float64, pg *series.PriceGrid) (*Trade, []portfolio.Order) {
	lastS := pg.Grid.SMax - 1

	// Divergence bookkeeping (§III step 2): the coefficient has
	// "diverged more than d% from C̄(s)" when C < C̄·(1−d). The
	// divergence must be fresh — it must have begun within the last Y
	// intervals — and each divergence episode triggers at most one
	// entry (the tracker re-arms when C returns above the band).
	band := cbar * (1 - tr.p.D)
	below := c < band
	if below {
		tr.belowAge++
	} else {
		tr.belowAge = 0
		tr.armed = true
	}

	if tr.pos != nil {
		if reason, ok := tr.exitReason(s, c, cbar, band, lastS, pg); ok {
			return tr.closePosition(s, reason, pg)
		}
		return nil, nil
	}

	// Entry (§III steps 2–5).
	if !below || !tr.armed || tr.belowAge > tr.p.Y {
		return nil, nil
	}
	if cbar <= tr.p.A {
		return nil, nil // step 3: C̄ must exceed the trading threshold
	}
	if s > lastS-tr.p.ST {
		return nil, nil // too close to the close to open
	}
	if s-tr.p.W < 0 || s-tr.p.RT+1 < 0 {
		return nil, nil // lookbacks not yet available
	}
	pi, pj := pg.Price(tr.pairI, s), pg.Price(tr.pairJ, s)
	if !(pi > 0) || !(pj > 0) || math.IsNaN(pi) || math.IsNaN(pj) {
		return nil, nil
	}
	retI := series.PeriodReturn(pg, tr.pairI, s, tr.p.W)
	retJ := series.PeriodReturn(pg, tr.pairJ, s, tr.p.W)
	if math.IsNaN(retI) || math.IsNaN(retJ) || retI == retJ {
		return nil, nil
	}
	spread, err := series.SpreadWindow(pg, tr.pairI, tr.pairJ, s, tr.p.RT)
	if err != nil {
		return nil, nil
	}

	// Step 3: long the under-performer, short the over-performer.
	longI := retI < retJ
	ni, nj := portfolio.ShareRatio(pi, pj, longI)

	pos := &portfolio.PairPosition{Day: tr.day, EntryS: s}
	if longI {
		pos.LongStock, pos.ShortStock = tr.pairI, tr.pairJ
		pos.LongSh, pos.ShortSh = ni, nj
		pos.LongPx, pos.ShortPx = pi, pj
	} else {
		pos.LongStock, pos.ShortStock = tr.pairJ, tr.pairI
		pos.LongSh, pos.ShortSh = nj, ni
		pos.LongPx, pos.ShortPx = pj, pi
	}

	// Step 5: retracement level from the RT-window spread statistics.
	se := pi - pj
	pos.EntrySpread = se
	if se <= spread.Avg {
		pos.Retrace = spread.Low + tr.p.L*(spread.High-spread.Low)
		pos.RetraceUp = true // reverse when the spread recovers upward
	} else {
		pos.Retrace = spread.High - tr.p.L*(spread.High-spread.Low)
		pos.RetraceUp = false
	}
	tr.pos = pos
	tr.armed = false // consume this divergence episode
	tr.lastEntryS = s

	return nil, []portfolio.Order{
		{Day: tr.day, Interval: s, Stock: pos.LongStock, Side: portfolio.Buy, Shares: pos.LongSh, Price: pos.LongPx},
		{Day: tr.day, Interval: s, Stock: pos.ShortStock, Side: portfolio.Sell, Shares: pos.ShortSh, Price: pos.ShortPx},
	}
}

// exitReason evaluates §III step-5 reversal triggers in priority
// order: stop-loss, correlation reversion, retracement, holding
// period, end of day.
func (tr *Tracker) exitReason(s int, c, cbar, band float64, lastS int, pg *series.PriceGrid) (ExitReason, bool) {
	pos := tr.pos
	if tr.p.StopLoss > 0 {
		le := pg.Price(pos.LongStock, s)
		se := pg.Price(pos.ShortStock, s)
		if !math.IsNaN(le) && !math.IsNaN(se) && pos.Return(le, se) < -tr.p.StopLoss {
			return ExitStopLoss, true
		}
	}
	if tr.p.CorrReversion && c >= band && c < cbar {
		return ExitCorrReversion, true
	}
	spread := pg.Spread(tr.pairI, tr.pairJ, s)
	if !math.IsNaN(spread) {
		if pos.RetraceUp && spread >= pos.Retrace {
			return ExitRetracement, true
		}
		if !pos.RetraceUp && spread <= pos.Retrace {
			return ExitRetracement, true
		}
	}
	if s-pos.EntryS >= tr.p.HP {
		return ExitHoldingPeriod, true
	}
	if s >= lastS {
		return ExitEndOfDay, true
	}
	return 0, false
}

// closePosition reverses the open position at interval s.
func (tr *Tracker) closePosition(s int, reason ExitReason, pg *series.PriceGrid) (*Trade, []portfolio.Order) {
	pos := tr.pos
	le := pg.Price(pos.LongStock, s)
	se := pg.Price(pos.ShortStock, s)
	if math.IsNaN(le) || math.IsNaN(se) || le <= 0 || se <= 0 {
		// Cannot price the exit this interval; hold until we can
		// (forward-filled grids make this transient at worst).
		return nil, nil
	}
	t := Trade{
		Day:        tr.day,
		PairI:      tr.pairI,
		PairJ:      tr.pairJ,
		EntryS:     pos.EntryS,
		ExitS:      s,
		LongStock:  pos.LongStock,
		ShortStock: pos.ShortStock,
		LongSh:     pos.LongSh,
		ShortSh:    pos.ShortSh,
		LongEntry:  pos.LongPx,
		ShortEntry: pos.ShortPx,
		LongExit:   le,
		ShortExit:  se,
		PnL:        pos.PnL(le, se),
		Return:     pos.Return(le, se),
		Reason:     reason,
	}
	tr.trades = append(tr.trades, t)
	tr.pos = nil
	orders := []portfolio.Order{
		{Day: tr.day, Interval: s, Stock: pos.LongStock, Side: portfolio.Sell, Shares: pos.LongSh, Price: le},
		{Day: tr.day, Interval: s, Stock: pos.ShortStock, Side: portfolio.Buy, Shares: pos.ShortSh, Price: se},
	}
	return &tr.trades[len(tr.trades)-1], orders
}

// RunDay backtests one pair for one day. corrSeries[t] is C(firstS+t)
// computed with window M; the tracker starts once the W-average is
// defined and finishes at the last interval, closing any open position
// (§III: "we should reverse all positions at the end of the trading
// day"). It returns the completed trades.
func RunDay(p Params, corrSeries []float64, firstS int, pg *series.PriceGrid, pairI, pairJ, day int) ([]Trade, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(corrSeries) < p.W {
		return nil, errors.New("strategy: correlation series shorter than W")
	}
	tr, err := NewTracker(p, pairI, pairJ, day)
	if err != nil {
		return nil, err
	}
	lastS := pg.Grid.SMax - 1

	// Rolling W-average of the correlation (§III step 1).
	var sum float64
	for t := 0; t < p.W-1; t++ {
		sum += corrSeries[t]
	}
	for t := p.W - 1; t < len(corrSeries); t++ {
		sum += corrSeries[t]
		cbar := sum / float64(p.W)
		s := firstS + t
		if s > lastS {
			break
		}
		tr.Step(s, corrSeries[t], cbar, pg)
		sum -= corrSeries[t-p.W+1]
	}
	// Force end-of-day close if the series ended with an open position
	// (can happen when the correlation series stops before lastS).
	if tr.pos != nil {
		tr.closePosition(lastS, ExitEndOfDay, pg)
	}
	return tr.trades, nil
}
