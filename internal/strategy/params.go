// Package strategy implements the paper's canonical intra-day
// statistical pair-trading strategy (§III): divergence detection on a
// sliding correlation average, cash-neutral-but-slightly-long position
// sizing, retracement/holding-period/end-of-day exits, and the Table I
// parameter grid.
//
// RunDay is a pure function of (params, correlation series, price
// grid): it allocates its own Tracker, reads nothing global, and emits
// the same trade list bit for bit on every call. This is the
// determinism the whole reproduction leans on — sweep resume, journal
// merges, and the distributed farm's duplicate-completion tolerance
// all assume that re-running a unit reproduces its bytes exactly.
package strategy

import (
	"fmt"

	"marketminer/internal/corr"
)

// Params is one strategy parameter vector k ∈ K (Table I). Time-based
// fields are in ∆s intervals; d is a fraction (0.0001 = 0.01%).
type Params struct {
	// DeltaS is the time window in seconds (Table I: 30 s).
	DeltaS int
	// Ctype is the correlation measure treatment.
	Ctype corr.Type
	// A is the minimum average correlation required for trading.
	A float64
	// M is the correlation calculation window.
	M int
	// W is the window of the correlation average C̄ (also used as the
	// period-return lookback that picks the over/under-performer).
	W int
	// Y is the window within which a divergence from the correlation
	// average must have occurred to trigger a trade.
	Y int
	// D is the divergence level from the correlation average required
	// to trigger a trade (fraction of C̄).
	D float64
	// L is the retracement parameter ℓ ∈ (0, 1).
	L float64
	// RT is the time window for measuring the spread level used in
	// the retracement calculation.
	RT int
	// HP is the maximum holding period for any position.
	HP int
	// ST is the minimum time before market close required to open a
	// new position.
	ST int

	// Extensions of §III step 5 that the paper describes but does not
	// evaluate ("we point out, but do not consider any further").
	// Both default off; the ablation benches turn them on.

	// StopLoss closes a position once its mark-to-market return drops
	// below −StopLoss (0 disables).
	StopLoss float64
	// CorrReversion closes a position once the correlation returns
	// inside [C̄(1−D), C̄] (off by default).
	CorrReversion bool
}

// DefaultParams returns the worked example of §III:
// {∆s=30, Ctype=Pearson, A=0.1, M=100, W=60, Y=10, d=0.01%, ℓ=2/3,
// RT=60, HP=30, ST=20}.
func DefaultParams() Params {
	return Params{
		DeltaS: 30,
		Ctype:  corr.Pearson,
		A:      0.1,
		M:      100,
		W:      60,
		Y:      10,
		D:      0.0001,
		L:      2.0 / 3,
		RT:     60,
		HP:     30,
		ST:     20,
	}
}

// Validate checks the vector is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.DeltaS <= 0:
		return fmt.Errorf("strategy: ∆s=%d must be positive", p.DeltaS)
	case p.A < 0 || p.A >= 1:
		return fmt.Errorf("strategy: A=%v outside [0,1)", p.A)
	case p.M < 2:
		return fmt.Errorf("strategy: M=%d too small", p.M)
	case p.W < 1:
		return fmt.Errorf("strategy: W=%d too small", p.W)
	case p.Y < 1:
		return fmt.Errorf("strategy: Y=%d too small", p.Y)
	case p.D <= 0:
		return fmt.Errorf("strategy: d=%v must be positive", p.D)
	case p.L <= 0 || p.L >= 1:
		return fmt.Errorf("strategy: ℓ=%v outside (0,1)", p.L)
	case p.RT < 1:
		return fmt.Errorf("strategy: RT=%d too small", p.RT)
	case p.HP < 1:
		return fmt.Errorf("strategy: HP=%d too small", p.HP)
	case p.ST < 0:
		return fmt.Errorf("strategy: ST=%d negative", p.ST)
	case p.StopLoss < 0:
		return fmt.Errorf("strategy: stop-loss %v negative", p.StopLoss)
	}
	return nil
}

// String renders the vector in the paper's set notation.
func (p Params) String() string {
	return fmt.Sprintf("{∆s=%d, Ctype=%s, A=%g, M=%d, W=%d, Y=%d, d=%g%%, ℓ=%.3f, RT=%d, HP=%d, ST=%d}",
		p.DeltaS, p.Ctype, p.A, p.M, p.W, p.Y, p.D*100, p.L, p.RT, p.HP, p.ST)
}

// WithType returns a copy of p using the given correlation measure.
func (p Params) WithType(t corr.Type) Params {
	p.Ctype = t
	return p
}

// BaseGrid returns the paper's 14 non-treatment parameter vectors K′
// (the levels of {∆s, M, W, Y, d, ℓ, RT, HP, ST} averaged over in
// Tables III–V). The paper does not list the exact 14 combinations, so
// we use a one-factor-at-a-time design around the §III base vector
// plus two interaction vectors, drawing every value from Table I's
// value columns. Ctype is left at Pearson; callers cross the grid with
// corr.Types() to obtain the full 42-set K.
func BaseGrid() []Params {
	base := DefaultParams()
	grid := make([]Params, 0, 14)
	add := func(mut func(*Params)) {
		p := base
		mut(&p)
		grid = append(grid, p)
	}
	add(func(p *Params) {})                // 1: base {M=100, W=60, Y=10, d=0.01%, ℓ=2/3, HP=30}
	add(func(p *Params) { p.M = 50 })      // 2
	add(func(p *Params) { p.M = 200 })     // 3
	add(func(p *Params) { p.W = 120 })     // 4
	add(func(p *Params) { p.Y = 20 })      // 5
	add(func(p *Params) { p.D = 0.0002 })  // 6
	add(func(p *Params) { p.D = 0.0003 })  // 7
	add(func(p *Params) { p.D = 0.0004 })  // 8
	add(func(p *Params) { p.D = 0.0005 })  // 9
	add(func(p *Params) { p.D = 0.0010 })  // 10
	add(func(p *Params) { p.L = 1.0 / 3 }) // 11
	add(func(p *Params) { p.HP = 40 })     // 12
	add(func(p *Params) {                  // 13: slow/wide interaction
		p.M = 200
		p.W = 120
		p.D = 0.0005
		p.HP = 40
	})
	add(func(p *Params) { // 14: fast/tight interaction
		p.M = 50
		p.Y = 20
		p.L = 1.0 / 3
	})
	return grid
}

// FullGrid crosses BaseGrid with the three correlation treatments,
// yielding the paper's 42 parameter sets (14 levels × 3 Ctypes).
func FullGrid() []Params {
	base := BaseGrid()
	out := make([]Params, 0, len(base)*3)
	for _, t := range corr.Types() {
		for _, p := range base {
			out = append(out, p.WithType(t))
		}
	}
	return out
}
