package marketminer

import (
	"context"
	"strings"
	"testing"

	"marketminer/internal/corr"
)

func TestFacadeConstants(t *testing.T) {
	if Pearson != corr.Pearson || Maronna != corr.Maronna || Combined != corr.Combined {
		t.Error("re-exported constants disagree with internal/corr")
	}
	if len(CorrTypes()) != 3 {
		t.Error("CorrTypes should list 3 treatments")
	}
}

func TestFacadeUniverseAndGrids(t *testing.T) {
	if DefaultUniverse().Len() != 61 {
		t.Error("default universe should have 61 stocks")
	}
	if len(ParamLevels()) != 14 {
		t.Error("ParamLevels should have 14 vectors")
	}
	if len(ParamGrid()) != 42 {
		t.Error("ParamGrid should have 42 sets")
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	u, err := NewUniverse([]string{"X", "Y"})
	if err != nil || u.NumPairs() != 1 {
		t.Errorf("NewUniverse: %v %v", u, err)
	}
}

func TestSweepConfigScales(t *testing.T) {
	tiny := SweepConfig(ScaleTiny, 1)
	if tiny.Market.Universe.Len() != 8 || tiny.Market.Days != 2 {
		t.Errorf("tiny scale wrong: %d stocks, %d days", tiny.Market.Universe.Len(), tiny.Market.Days)
	}
	small := SweepConfig(ScaleSmall, 1)
	if small.Market.Universe.Len() != 20 || small.Market.Days != 5 {
		t.Errorf("small scale wrong")
	}
	paper := SweepConfig(ScalePaper, 1)
	if paper.Market.Universe.Len() != 61 || paper.Market.Days != 20 {
		t.Errorf("paper scale wrong")
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny config invalid: %v", err)
	}
}

// TestEndToEndTinySweep runs the complete public workflow: generate →
// backtest → format tables. This is the facade-level smoke test; the
// heavy lifting is covered in the internal packages.
func TestEndToEndTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := SweepConfig(ScaleTiny, 99)
	// Shrink the grid to 2 levels to keep the test fast on one core.
	levels := ParamLevels()[:2]
	cfg.Levels = levels
	res, err := RunBacktest(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPairs() != 28 {
		t.Errorf("pairs = %d, want 28", res.NumPairs())
	}
	if res.TradeCount == 0 {
		t.Error("tiny sweep produced no trades")
	}
	for _, s := range []string{FormatTableIII(res), FormatTableIV(res), FormatTableV(res)} {
		if !strings.Contains(s, "Pearson") || !strings.Contains(s, "Combined") {
			t.Errorf("table missing treatment columns:\n%s", s)
		}
	}
	fig := FormatFigure2(res)
	if strings.Count(fig, "FIGURE 2") != 3 {
		t.Errorf("Figure 2 should have 3 panels:\n%s", fig)
	}
}

func TestLivePipelineFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	u, err := NewUniverse([]string{"AA", "BB", "CC", "DD"})
	if err != nil {
		t.Fatal(err)
	}
	mc := MarketConfig{Universe: u, Seed: 3, Days: 1, QuoteRate: 0.2, NumSectors: 2, BreakdownsPerDay: 6}
	gen, err := NewMarket(mc)
	if err != nil {
		t.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.M = 30
	p.W = 20
	p.RT = 20
	p.D = 0.005
	res, err := RunLivePipeline(context.Background(), PipelineConfig{
		Universe: u,
		Params:   []Params{p},
	}, day.Quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrices == 0 {
		t.Error("live pipeline produced no matrices")
	}
}
