#!/usr/bin/env sh
# Full verification gate: vet, build, and race-enabled tests for every
# package. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke: go test -run '^\$' -bench . -benchtime 1x ./..."
go test -run '^$' -bench . -benchtime 1x ./...

echo "verify: OK"
