#!/usr/bin/env sh
# Full verification gate: vet, build, and race-enabled tests for every
# package. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== package docs: every internal package documents itself"
for d in internal/*/; do
    name=$(basename "$d")
    if ! grep -l -r "^// Package $name " "$d" --include='*.go' >/dev/null 2>&1; then
        echo "missing package doc: $d" >&2
        exit 1
    fi
done

echo "== go build ./..."
go build ./...

echo "== cross-arch builds: the SIMD dispatch must degrade, not break"
GOARCH=arm64 go build ./...
GOARCH=386 go build ./...
go build -tags noasm ./...

echo "== go test -race ./internal/sweep ./internal/sched (orchestrator focus)"
go test -race ./internal/sweep ./internal/sched

echo "== go test -race ./internal/corr ./internal/sched (matrix engine focus)"
go test -race ./internal/corr ./internal/sched

echo "== go test -race ./internal/screen ./internal/corr (screening + batched kernel focus)"
go test -race ./internal/screen ./internal/corr

echo "== batched-vs-reference bit-identity smoke"
go test -race -run 'TestMatrixEngineMatchesReference|TestBatchDegenerateLanesMatchReference|TestFloat32LaneAccuracy' ./internal/corr

echo "== SIMD bit-identity: vector tier vs reference, plus scalar-tier (noasm) run"
go test -race -run 'TestSIMD|FuzzSIMDMatchesScalar' ./internal/corr
go test -tags noasm -run 'TestSIMD|TestBatchDegenerateLanesMatchReference|FuzzSIMDMatchesScalar' ./internal/corr

echo "== go test -race ./internal/feed ./internal/supervise ./internal/chaos (robustness focus)"
go test -race ./internal/feed ./internal/supervise ./internal/chaos

echo "== go test -race ./internal/broker (signal broker focus)"
go test -race ./internal/broker

echo "== go test -race ./internal/farm ./internal/feed (distributed sweep farm focus)"
go test -race ./internal/farm ./internal/feed

echo "== coordinator crash-recovery gate: SIGKILL restart, standby takeover, fencing, torn tail"
go test -race -run 'TestFarmCoordinatorSIGKILL|TestFarmStandbyTakeover|TestFarmEpochFencing|TestFarmJournalTornTail|TestFarmCoordinatorMetrics|TestFarmWorkerBackoff' ./internal/farm

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke: go test -run '^\$' -bench . -benchtime 1x ./..."
go test -run '^$' -bench . -benchtime 1x ./...

sh scripts/sweep_smoke.sh
sh scripts/chaos_smoke.sh
sh scripts/broker_smoke.sh
sh scripts/farm_smoke.sh

echo "== bench gate: fresh kernel ratios + scaling efficiency vs committed baselines"
bench_tmp=$(mktemp /tmp/mm_bench_gate.XXXXXX.json)
scaling_tmp=$(mktemp /tmp/mm_scaling_gate.XXXXXX.json)
trap 'rm -f "$bench_tmp" "$scaling_tmp"' EXIT
go run ./cmd/mmscale -stocks 8 -days 1 -levels 2 -bench-json "$bench_tmp" -scaling-json "$scaling_tmp" >/dev/null
go run ./cmd/mmbenchgate -fresh "$bench_tmp" -committed BENCH_corr.json \
    -fresh-scaling "$scaling_tmp" -committed-scaling BENCH_scaling.json

echo "verify: OK"
