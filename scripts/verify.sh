#!/usr/bin/env sh
# Full verification gate: vet, build, and race-enabled tests for every
# package. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== package docs: every internal package documents itself"
for d in internal/*/; do
    name=$(basename "$d")
    if ! grep -l -r "^// Package $name " "$d" --include='*.go' >/dev/null 2>&1; then
        echo "missing package doc: $d" >&2
        exit 1
    fi
done

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/sweep ./internal/sched (orchestrator focus)"
go test -race ./internal/sweep ./internal/sched

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke: go test -run '^\$' -bench . -benchtime 1x ./..."
go test -run '^$' -bench . -benchtime 1x ./...

sh scripts/sweep_smoke.sh

echo "verify: OK"
