#!/usr/bin/env sh
# Distributed sweep farm smoke: a coordinator plus two local workers —
# one on a chaos-injected link, one SIGKILLed mid-sweep — must still
# produce merged results byte-identical to the unsharded single-host
# run, and a re-serve of the finished journal must execute nothing.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT

echo "== farm smoke: coordinator + 2 workers (1 chaotic, 1 SIGKILLed), merged vs single-host"
go build -o "$tmp/mmbacktest" ./cmd/mmbacktest
go build -o "$tmp/mmfarm" ./cmd/mmfarm

# 8 stocks x 2 days x 3 levels x 3 types in 8-pair blocks: 8 groups /
# 72 units — a few seconds of work, so the SIGKILL lands mid-sweep.
SWEEP="-scale tiny -levels 3 -block 8"
ADDR=127.0.0.1:9753

# Reference: the uninterrupted single-host run.
"$tmp/mmbacktest" $SWEEP -json "$tmp/single.json" >/dev/null

# Farm run. The doomed worker is hard-killed shortly after it starts;
# its leases are reclaimed and the chaotic worker (corrupted and cut
# every few KB, reconnecting each time) finishes the sweep.
"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/farm.journal" $SWEEP \
    -ttl 2s -merge-out "$tmp/merged.json" -quiet > "$tmp/serve.log" 2>&1 &
serve_pid=$!
sleep 0.3

"$tmp/mmfarm" work -connect $ADDR $SWEEP -name doomed -quiet > "$tmp/doomed.log" 2>&1 &
doomed_pid=$!
"$tmp/mmfarm" work -connect $ADDR $SWEEP -name chaotic -quiet \
    -chaos 'seed=11,corrupt=16384,cut=65536' > "$tmp/chaotic.log" 2>&1 &

sleep 1.5
kill -9 "$doomed_pid" 2>/dev/null || true

wait "$serve_pid" || { echo "farm smoke: coordinator failed:"; cat "$tmp/serve.log"; exit 1; } >&2

cmp "$tmp/single.json" "$tmp/merged.json" || {
    echo "farm smoke: merged farm output differs from single-host run" >&2
    exit 1
}

# The kill must actually have cost the coordinator a lease (reclaimed
# on disconnect or expired by TTL) — otherwise the recovery path was
# never on the hook.
grep -Eq 'farm\.lease_(reclaims|expiries) = [1-9]' "$tmp/serve.log" || {
    echo "farm smoke: SIGKILL never interrupted a leased group; recovery untested:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
}

# Re-serving the finished journal must restore everything and execute
# nothing (no listener traffic needed: it exits immediately).
"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/farm.journal" $SWEEP -quiet > "$tmp/reserve.log" 2>&1
grep -q ' 0 from 0 worker' "$tmp/reserve.log" || {
    echo "farm smoke: re-serve of a complete journal executed units:" >&2
    cat "$tmp/reserve.log" >&2
    exit 1
}

echo "farm smoke: OK (SIGKILL + chaos farm output byte-identical to single-host; finished journal re-serves as a no-op)"
