#!/usr/bin/env sh
# Distributed sweep farm smoke: a coordinator plus two local workers —
# one on a chaos-injected link, one SIGKILLed mid-sweep — must still
# produce merged results byte-identical to the unsharded single-host
# run, and a re-serve of the finished journal must execute nothing.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT

echo "== farm smoke: coordinator + 2 workers (1 chaotic, 1 SIGKILLed), merged vs single-host"
go build -o "$tmp/mmbacktest" ./cmd/mmbacktest
go build -o "$tmp/mmfarm" ./cmd/mmfarm

# 8 stocks x 2 days x 3 levels x 3 types in 8-pair blocks: 8 groups /
# 72 units — a few seconds of work, so the SIGKILL lands mid-sweep.
SWEEP="-scale tiny -levels 3 -block 8"
ADDR=127.0.0.1:9753

# Reference: the uninterrupted single-host run.
"$tmp/mmbacktest" $SWEEP -json "$tmp/single.json" >/dev/null

# Farm run. The doomed worker is hard-killed shortly after it starts;
# its leases are reclaimed and the chaotic worker (corrupted and cut
# every few KB, reconnecting each time) finishes the sweep.
"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/farm.journal" $SWEEP \
    -ttl 2s -merge-out "$tmp/merged.json" -quiet > "$tmp/serve.log" 2>&1 &
serve_pid=$!
sleep 0.3

"$tmp/mmfarm" work -connect $ADDR $SWEEP -name doomed -quiet > "$tmp/doomed.log" 2>&1 &
doomed_pid=$!
"$tmp/mmfarm" work -connect $ADDR $SWEEP -name chaotic -quiet \
    -chaos 'seed=11,corrupt=16384,cut=65536' > "$tmp/chaotic.log" 2>&1 &

sleep 1.5
kill -9 "$doomed_pid" 2>/dev/null || true

wait "$serve_pid" || { echo "farm smoke: coordinator failed:"; cat "$tmp/serve.log"; exit 1; } >&2

cmp "$tmp/single.json" "$tmp/merged.json" || {
    echo "farm smoke: merged farm output differs from single-host run" >&2
    exit 1
}

# The kill must actually have cost the coordinator a lease (reclaimed
# on disconnect or expired by TTL) — otherwise the recovery path was
# never on the hook.
grep -Eq 'farm\.lease_(reclaims|expiries) = [1-9]' "$tmp/serve.log" || {
    echo "farm smoke: SIGKILL never interrupted a leased group; recovery untested:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
}

# Re-serving the finished journal must restore everything and execute
# nothing (no listener traffic needed: it exits immediately).
"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/farm.journal" $SWEEP -quiet > "$tmp/reserve.log" 2>&1
grep -q ' 0 from 0 worker' "$tmp/reserve.log" || {
    echo "farm smoke: re-serve of a complete journal executed units:" >&2
    cat "$tmp/reserve.log" >&2
    exit 1
}

echo "== farm smoke: coordinator SIGKILLed mid-sweep, restarted on the same journal"

# This time the *coordinator* is hard-killed mid-sweep. The restart
# must claim a higher epoch from the manifest, restore the journaled
# units, accept the worker's session resume, and finish byte-identical.
# A bigger grid (8 levels x 3 types in 4-pair blocks: 14 groups / 336
# units, several seconds of work) guarantees the kill lands mid-sweep.
SWEEP2="-scale tiny -levels 8 -block 4"
"$tmp/mmbacktest" $SWEEP2 -json "$tmp/single2.json" >/dev/null

"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/restart.journal" $SWEEP2 \
    -ttl 2s -quiet > "$tmp/serve1.log" 2>&1 &
serve1_pid=$!
sleep 0.3
"$tmp/mmfarm" work -connect $ADDR $SWEEP2 -name restart-rider -quiet > "$tmp/rider.log" 2>&1 &
rider_pid=$!

# Kill the moment a couple dozen units are journaled — polling the
# journal instead of sleeping keeps the kill mid-sweep on any machine.
polls=0
while :; do
    lines=$(wc -l < "$tmp/restart.journal" 2>/dev/null || echo 0)
    [ "$lines" -ge 24 ] && break
    polls=$((polls + 1))
    [ "$polls" -ge 400 ] && {
        echo "farm smoke: sweep never reached 24 journaled units; cannot test the restart" >&2
        cat "$tmp/serve1.log" "$tmp/rider.log" >&2
        exit 1
    }
    sleep 0.05
done
kill -9 "$serve1_pid" 2>/dev/null || true
wait "$serve1_pid" 2>/dev/null || true
sleep 0.2

"$tmp/mmfarm" serve -listen $ADDR -journal "$tmp/restart.journal" $SWEEP2 \
    -ttl 2s -merge-out "$tmp/restart-merged.json" -quiet > "$tmp/serve2.log" 2>&1 || {
    echo "farm smoke: restarted coordinator failed:" >&2
    cat "$tmp/serve2.log" >&2
    exit 1
}
wait "$rider_pid" || { echo "farm smoke: worker did not survive the coordinator restart:"; cat "$tmp/rider.log"; exit 1; } >&2

cmp "$tmp/single2.json" "$tmp/restart-merged.json" || {
    echo "farm smoke: output after coordinator kill+restart differs from single-host run" >&2
    exit 1
}

# Hard assertions that the recovery path was actually on the hook: the
# restart found a prior manifest, restored journaled units instead of
# recomputing them, and accepted the worker's session resume.
grep -q 'farm\.coordinator_restarts = 1' "$tmp/serve2.log" || {
    echo "farm smoke: restart did not register as a coordinator restart:" >&2
    cat "$tmp/serve2.log" >&2
    exit 1
}
grep -Eq 'farm\.coordinator_rejoins_accepted = [1-9]' "$tmp/serve2.log" || {
    echo "farm smoke: no worker session resume was accepted after the restart:" >&2
    cat "$tmp/serve2.log" >&2
    exit 1
}
grep -q '(0 restored' "$tmp/serve2.log" && {
    echo "farm smoke: restart restored nothing; the SIGKILL missed the sweep:" >&2
    cat "$tmp/serve2.log" >&2
    exit 1
}

echo "farm smoke: OK (SIGKILL + chaos farm output byte-identical to single-host; finished journal re-serves as a no-op; coordinator kill+restart recovers byte-identically)"
