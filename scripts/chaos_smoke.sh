#!/usr/bin/env sh
# End-to-end crash-recovery smoke: run the deterministic engine day
# clean, then run it again with a hard SIGKILL mid-day followed by a
# resume from the crash-safe snapshot, and require the two digests to
# be identical. A third run against a deliberately corrupted snapshot
# must cold-start (with a warning) and still produce the clean digest.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== chaos smoke: SIGKILL mid-day, resume from snapshot, compare digests"
go build -o "$tmp/mmchaos" ./cmd/mmchaos

clean=$("$tmp/mmchaos" -intervals 400 -quiet)

# Crash run: the process SIGKILLs itself after 150 pushes; the kill is
# expected, so tolerate the non-zero (signal) exit.
"$tmp/mmchaos" -intervals 400 -snapshot "$tmp/day.snap" -crash-after 150 -quiet \
    && { echo "chaos smoke: crash run survived its own SIGKILL" >&2; exit 1; } \
    || true
test -s "$tmp/day.snap" || { echo "chaos smoke: killed run left no snapshot" >&2; exit 1; }

resumed=$("$tmp/mmchaos" -intervals 400 -snapshot "$tmp/day.snap" -quiet)
if [ "$clean" != "$resumed" ]; then
    echo "chaos smoke: digest after SIGKILL+resume ($resumed) != clean run ($clean)" >&2
    exit 1
fi

# Seeded panics (restart + replay-from-snapshot path) must also land on
# the clean digest.
rm -f "$tmp/day.snap"
panicked=$("$tmp/mmchaos" -intervals 400 -snapshot "$tmp/day.snap" -fail-at 60,220 -quiet)
if [ "$clean" != "$panicked" ]; then
    echo "chaos smoke: digest after panics+restarts ($panicked) != clean run ($clean)" >&2
    exit 1
fi

# A corrupt snapshot must be rejected: cold start, same digest.
printf 'garbage, not a snapshot' > "$tmp/day.snap"
cold=$("$tmp/mmchaos" -intervals 400 -snapshot "$tmp/day.snap" -quiet)
if [ "$clean" != "$cold" ]; then
    echo "chaos smoke: digest after corrupt-snapshot cold start ($cold) != clean run ($clean)" >&2
    exit 1
fi

echo "chaos smoke: OK (clean, SIGKILL+resume, panic+restart and corrupt-snapshot runs all agree: $clean)"
