#!/usr/bin/env sh
# Signal-broker delivery smoke: serve the deterministic synthetic day
# three ways — clean, with a partition processor hard-killed mid-day,
# and with chaos corrupt/cut injected on the subscriber's wire — and
# require every subscriber's delivered-stream digest to be identical.
# This is the shell-level restatement of the broker's delivery
# contract: crashes, rebalances and wire faults must never lose,
# duplicate or reorder a committed signal.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; kill $(cat "$tmp_pids" 2>/dev/null) 2>/dev/null || true' EXIT
tmp_pids="$tmp/pids"
: > "$tmp_pids"

echo "== broker smoke: clean vs kill+rebalance vs chaos-wire digests"
go build -o "$tmp/mmbroker" ./cmd/mmbroker

port1=$((21000 + $$ % 9000))
port2=$((port1 + 1))
day="-n 8 -m 10 -intervals 80 -partitions 4 -seed 42"

# Clean run: one member gets the whole day.
"$tmp/mmbroker" -mode serve -listen "127.0.0.1:$port1" -await-subs 1 $day \
    > "$tmp/serve_clean.log" 2>&1 &
echo $! >> "$tmp_pids"
clean=$("$tmp/mmbroker" -mode subscribe -connect "127.0.0.1:$port1" \
    -group g -member m-0 -from-start -quiet 2>"$tmp/sub_clean.err")

# Faulted run: partition 1's processor is hard-killed mid-day (lease
# expiry must rebalance it); one subscriber on a clean wire, one
# behind deterministic corrupt/cut chaos.
"$tmp/mmbroker" -mode serve -listen "127.0.0.1:$port2" -await-subs 2 -kill 1@40 $day \
    > "$tmp/serve_fault.log" 2>&1 &
echo $! >> "$tmp_pids"
"$tmp/mmbroker" -mode subscribe -connect "127.0.0.1:$port2" \
    -group g -member m-0 -from-start -quiet > "$tmp/d_fault.txt" 2>"$tmp/sub_fault.err" &
subpid=$!
chaotic=$("$tmp/mmbroker" -mode subscribe -connect "127.0.0.1:$port2" \
    -group h -member solo -from-start -quiet \
    -chaos seed=7,corrupt=16384,cut=32768 2>"$tmp/sub_chaos.err")
wait "$subpid"
faulted=$(cat "$tmp/d_fault.txt")

grep -q "hard-killing partition 1" "$tmp/serve_fault.log" \
    || { echo "broker smoke: faulted serve never killed partition 1" >&2; exit 1; }
grep -q "lease expired; relaunching" "$tmp/serve_fault.log" \
    || { echo "broker smoke: kill did not trigger a lease rebalance" >&2; exit 1; }

if [ "$clean" != "$faulted" ]; then
    echo "broker smoke: digest after kill+rebalance ($faulted) != clean run ($clean)" >&2
    exit 1
fi
if [ "$clean" != "$chaotic" ]; then
    echo "broker smoke: digest through chaos wire ($chaotic) != clean run ($clean)" >&2
    exit 1
fi

echo "broker smoke: OK (clean, kill+rebalance and chaos-wire subscribers all delivered digest $clean)"
