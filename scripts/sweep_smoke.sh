#!/usr/bin/env sh
# End-to-end sharded-sweep smoke: run a tiny sweep as two shard
# processes writing separate journals, merge them with mmreport, run
# the same sweep unsharded in memory, and require the two JSON results
# to be byte-identical. SaveJSON is deterministic, so cmp is the whole
# bit-determinism check. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== sweep smoke: 2-shard tiny sweep vs unsharded"
go build -o "$tmp/mmbacktest" ./cmd/mmbacktest
go build -o "$tmp/mmreport" ./cmd/mmreport

"$tmp/mmbacktest" -scale tiny -seed 7 -levels 2 \
    -journal "$tmp/shard0.journal" -shard 0/2 >/dev/null
"$tmp/mmbacktest" -scale tiny -seed 7 -levels 2 \
    -journal "$tmp/shard1.journal" -shard 1/2 >/dev/null
"$tmp/mmreport" -merge "$tmp/shard*.journal" -out "$tmp/merged.json" >/dev/null

"$tmp/mmbacktest" -scale tiny -seed 7 -levels 2 -json "$tmp/single.json" >/dev/null

cmp "$tmp/merged.json" "$tmp/single.json"
echo "sweep smoke: OK (merged shard output bit-identical to unsharded run)"
