package marketminer_test

import (
	"context"
	"fmt"
	"log"

	"marketminer"
)

// ExampleParamGrid shows the paper's Table I grid: 14 non-treatment
// levels crossed with the three correlation measures.
func ExampleParamGrid() {
	grid := marketminer.ParamGrid()
	fmt.Println(len(marketminer.ParamLevels()), "levels,", len(grid), "sets")
	fmt.Println(grid[0])
	// Output:
	// 14 levels, 42 sets
	// {∆s=30, Ctype=Pearson, A=0.1, M=100, W=60, Y=10, d=0.01%, ℓ=0.667, RT=60, HP=30, ST=20}
}

// ExampleDefaultUniverse shows the 61-stock universe and its pair
// count — the scale of the paper's Section V experiment.
func ExampleDefaultUniverse() {
	u := marketminer.DefaultUniverse()
	fmt.Println(u.Len(), "stocks,", u.NumPairs(), "pairs")
	// Output: 61 stocks, 1830 pairs
}

// ExampleNewMarket generates one deterministic synthetic trading day.
func ExampleNewMarket() {
	universe, err := marketminer.NewUniverse([]string{"XOM", "CVX"})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := marketminer.NewMarket(marketminer.MarketConfig{
		Universe: universe, Seed: 1, Days: 1, QuoteRate: 0.01, LiquiditySpread: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(day.Quotes[0].Symbol, "quoted at", day.Quotes[0].Clock())
	// Output: CVX quoted at 09:30:09
}

// ExampleRunBacktest sketches the Section V sweep; scaled down so the
// example stays illustrative (not executed as a doc test).
func ExampleRunBacktest() {
	cfg := marketminer.SweepConfig(marketminer.ScaleTiny, 20080301)
	cfg.Levels = marketminer.ParamLevels()[:2]
	res, err := marketminer.RunBacktest(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Types) == 3, res.NumPairs() == 28)
	// Output: true true
}
